"""Tests cross-validating the solver against brute-force enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.solver.enumerate import count_valid_partitions, enumerate_valid_partitions
from repro.solver.strategies import fix_partition, sample_partition
from tests.conftest import random_dag


def _tiny_chain(k):
    b = GraphBuilder("chain")
    prev = b.add_node("n0", OpType.INPUT, compute_us=1.0, output_bytes=1.0)
    for i in range(1, k):
        prev = b.add_node(f"n{i}", OpType.RELU, compute_us=1.0, output_bytes=1.0,
                          inputs=[prev])
    return b.build()


class TestEnumeration:
    def test_chain_count_known(self):
        # A 4-chain on 2 chips: valid = contiguous prefix cuts that use
        # chip 0 first: 0000, 0001, 0011, 0111 -> 4.
        g = _tiny_chain(4)
        n_valid, n_total = count_valid_partitions(g, 2)
        assert n_total == 16
        assert n_valid == 4

    def test_chain_single_chip(self):
        g = _tiny_chain(3)
        n_valid, _ = count_valid_partitions(g, 1)
        assert n_valid == 1

    def test_sparsity_grows_with_chips(self):
        """The paper's motivation: valid fraction collapses as C grows."""
        g = _tiny_chain(6)
        f2 = count_valid_partitions(g, 2)
        f3 = count_valid_partitions(g, 3)
        assert f2[0] / f2[1] > f3[0] / f3[1]

    def test_limit(self):
        g = _tiny_chain(5)
        assert len(enumerate_valid_partitions(g, 2, limit=2)) == 2

    def test_budget_guard(self):
        g = _tiny_chain(30)
        with pytest.raises(ValueError, match="budget"):
            enumerate_valid_partitions(g, 4)


class TestSolverCompleteness:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 200), n_nodes=st.integers(3, 8), n_chips=st.integers(2, 3))
    def test_solver_samples_are_in_the_enumerated_set(self, seed, n_nodes, n_chips):
        """Every solver sample must be a brute-force valid partition."""
        g = random_dag(seed, n_nodes)
        valid = {tuple(v) for v in enumerate_valid_partitions(g, n_chips)}
        probs = np.full((n_nodes, n_chips), 1.0 / n_chips)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            y = sample_partition(g, probs, n_chips, rng=rng)
            assert tuple(y) in valid
            y2 = fix_partition(g, rng.integers(0, n_chips, n_nodes), n_chips, rng=rng)
            assert tuple(y2) in valid

    def test_solver_reaches_every_valid_partition(self):
        """With enough draws, SAMPLE mode covers the whole valid set of a
        small instance (no systematically unreachable solutions)."""
        g = _tiny_chain(4)
        valid = {tuple(v) for v in enumerate_valid_partitions(g, 2)}
        probs = np.full((4, 2), 0.5)
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(300):
            seen.add(tuple(sample_partition(g, probs, 2, rng=rng)))
            if seen == valid:
                break
        assert seen == valid
