"""Property tests for the engine's triangle 'addable edge' analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.solver.chipgraph import triangle_violations
from repro.solver.engine import ConstraintSolver


def _engine_with_adjacency(adj: np.ndarray) -> ConstraintSolver:
    """A solver whose chip-edge multiset equals ``adj`` (test hook)."""
    b = GraphBuilder("stub")
    b.add_node("x", OpType.INPUT, compute_us=1.0, output_bytes=1.0)
    g = b.build()
    s = ConstraintSolver(g, adj.shape[0])
    s._edge_count = adj.astype(np.int64)
    s._rebuild_adj_mask()
    s._tables_dirty = True
    return s


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 7),
    density=st.floats(0.0, 0.6),
)
def test_allowed_edge_matches_brute_force(seed, n, density):
    """allowed[x, y] is True iff adding the edge keeps Eq. 4 satisfiable.

    Brute force: add each candidate edge to the adjacency and check for
    triangle violations directly.
    """
    rng = np.random.default_rng(seed)
    adj = np.triu(rng.random((n, n)) < density, k=1)
    # only test triangle-clean starting adjacencies (the solver never holds
    # a violated one)
    if triangle_violations(adj).size:
        return
    solver = _engine_with_adjacency(adj)
    allowed = solver._tables()["allowed"]
    for x in range(n):
        for y in range(x + 1, n):
            trial = adj.copy()
            trial[x, y] = True
            expected = triangle_violations(trial).size == 0
            assert allowed[x, y] == expected, (adj, x, y)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 7), density=st.floats(0.0, 0.6))
def test_existing_edges_always_allowed(seed, n, density):
    rng = np.random.default_rng(seed)
    adj = np.triu(rng.random((n, n)) < density, k=1)
    if triangle_violations(adj).size:
        return
    solver = _engine_with_adjacency(adj)
    allowed = solver._tables()["allowed"]
    assert np.all(allowed[adj])


def test_violated_flag_matches_triangle_check():
    adj = np.zeros((3, 3), dtype=bool)
    adj[0, 1] = adj[1, 2] = adj[0, 2] = True
    solver = _engine_with_adjacency(adj)
    assert solver._tables()["violated"]

    adj2 = np.zeros((3, 3), dtype=bool)
    adj2[0, 1] = adj2[1, 2] = True
    solver2 = _engine_with_adjacency(adj2)
    assert not solver2._tables()["violated"]


def test_tables_memo_hit_on_same_adjacency():
    adj = np.zeros((4, 4), dtype=bool)
    adj[0, 1] = True
    solver = _engine_with_adjacency(adj)
    entry1 = solver._tables()
    solver._tables_dirty = True  # simulate an undo returning to this state
    entry2 = solver._tables()
    assert entry1 is entry2  # memoised by packed adjacency
