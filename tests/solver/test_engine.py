"""Tests for the constraint-solver engine."""

import numpy as np
import pytest

from repro.solver.constraints import validate_partition
from repro.solver.engine import ConstraintSolver
from tests.conftest import random_dag


class TestDomains:
    def test_initial_domains_full(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        for u in range(chain_graph.n_nodes):
            np.testing.assert_array_equal(s.get_domain(u), [0, 1, 2, 3])

    def test_set_domain_returns_decision_count(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        assert s.set_domain(5, 1) == 1
        assert s.set_domain(7, 2) == 2

    def test_source_pinned_to_chip_zero_by_coverage(self, chain_graph):
        # In a chain every node is >= the source's chip, so placing the
        # source anywhere but chip 0 would leave chip 0 empty (Eq. 3).
        s = ConstraintSolver(chain_graph, 4)
        assert s.set_domain(0, 1) == 0  # rejected, no decision committed
        assert 1 not in s.get_domain(0).tolist()

    def test_bounds_propagate_forward(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        s.set_domain(5, 2)
        # descendants of node 5 must be >= 2
        assert s.get_domain(9).min() >= 2
        # ancestors must be <= 2
        assert s.get_domain(0).max() <= 2

    def test_fixed_detection(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        s.set_domain(3, 1)
        assert s.is_fixed(3)
        assert not s.is_fixed(4)

    def test_multi_value_restriction(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        s.set_domain(5, [1, 2])
        assert set(s.get_domain(5).tolist()) <= {1, 2}

    def test_assignment_requires_completion(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        with pytest.raises(RuntimeError):
            s.assignment()

    def test_rejects_out_of_range_value(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        with pytest.raises(ValueError):
            s.set_domain(0, 7)

    def test_rejects_too_many_chips(self, chain_graph):
        with pytest.raises(ValueError):
            ConstraintSolver(chain_graph, 64)


class TestBacktracking:
    def test_conflicting_assignment_backtracks(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        assert s.set_domain(5, 2) == 1  # descendants >= 2, ancestors <= 2
        # A later node cannot go below its ancestor's chip: the attempt must
        # not commit, and the offending value must leave the domain.
        i = s.set_domain(7, 1)
        assert i == 1
        assert 1 not in s.get_domain(7).tolist()
        # A consistent value still commits normally.
        assert s.set_domain(7, 3) == 2

    def test_complete_chain_assignment_valid(self, chain_graph):
        s = ConstraintSolver(chain_graph, 3)
        rng = np.random.default_rng(0)
        i = 0
        order = np.arange(10)
        while i < 10:
            u = int(order[i])
            dom = s.get_domain(u)
            i = s.set_domain(u, int(rng.choice(dom)))
        y = s.assignment()
        assert validate_partition(chain_graph, y, 3).ok

    def test_reset_restores_domains(self, chain_graph):
        s = ConstraintSolver(chain_graph, 4)
        s.set_domain(0, 3)
        s.reset()
        assert s.n_decisions == 0
        np.testing.assert_array_equal(s.get_domain(0), [0, 1, 2, 3])

    def test_no_skipping_propagation(self, chain_graph):
        # Forcing the first node to chip 3 means chips 0-2 must be covered
        # by... nothing can be below 3 on a chain -> conflict resolution
        # must exclude 3 for node 0.
        s = ConstraintSolver(chain_graph, 4)
        i = s.set_domain(0, 3)
        if i == 1:
            # accepted: then some node must cover 0,1,2 -> impossible on a
            # chain where everything is >= 3; the solver may only accept if
            # coverage is still possible (it is not), so it must backtrack.
            assert 3 not in s.get_domain(0)
        else:
            assert i == 0

    def test_triangle_propagation_blocks_sandwich(self, diamond_graph):
        # diamond: 0 -> (1, 2) -> 3 -> 4 on 3 chips
        s = ConstraintSolver(diamond_graph, 3)
        s.set_domain(0, 0)
        s.set_domain(1, 1)  # creates chip edge 0 -> 1
        s.set_domain(3, 1)
        # node 2 on chip 0..1 only; taking 2 would need edge (0,2) or (2,?)
        dom = s.get_domain(2)
        assert 2 not in dom.tolist()


class TestDomainAfterConflicts:
    def test_exclusions_shrink_domain(self, diamond_graph):
        s = ConstraintSolver(diamond_graph, 2)
        s.set_domain(0, 1)  # everything >= 1 -> chip 0 uncovered unless...
        # chain: all nodes now on chip 1 (no way to cover chip 0 except
        # nothing exceeds... max = 1 requires chip 0 covered -> impossible)
        # Solver should have rejected or excluded accordingly.
        y_complete = True
        i = s.n_decisions
        for u in [1, 2, 3, 4]:
            dom = s.get_domain(u)
            i = s.set_domain(u, int(dom[0]))
        if i == 5:
            y = s.assignment()
            assert validate_partition(diamond_graph, y, 2).ok
