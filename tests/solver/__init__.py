"""Test package."""
