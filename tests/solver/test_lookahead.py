"""Focused tests on get_domain's triangle look-ahead behaviour."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.solver.engine import ConstraintSolver


def _fanout_merge(n_branches=3):
    """source -> n parallel nodes -> sink (the wedge motif)."""
    b = GraphBuilder("fanout")
    src = b.add_node("src", OpType.INPUT, compute_us=1.0, output_bytes=8.0)
    mids = [
        b.add_node(f"mid{k}", OpType.RELU, compute_us=1.0, output_bytes=8.0,
                   inputs=[src])
        for k in range(n_branches)
    ]
    b.add_node("sink", OpType.ADD, compute_us=1.0, output_bytes=8.0, inputs=mids)
    return b.build()


class TestLookahead:
    def test_pruned_domain_respects_fixed_neighbours(self):
        g = _fanout_merge()
        s = ConstraintSolver(g, 4)
        s.set_domain(0, 0)   # source on chip 0
        s.set_domain(1, 1)   # mid0 on chip 1: chip edge (0, 1)
        s.set_domain(4, 1)   # sink on chip 1: edge (1, 1) none; mids <= 1
        # remaining mids must sit on chip 0 or 1; look-ahead must not offer
        # chips that would create a skip edge (0, >1) anyway (bounds already
        # restrict to <= 1 here, so domains are {0, 1})
        for mid in (2, 3):
            dom = set(s.get_domain(mid).tolist())
            assert dom <= {0, 1}

    def test_lookahead_never_returns_empty(self):
        """When pruning would empty a domain, the raw domain is returned so
        set_domain can discover the conflict and back-track properly."""
        g = _fanout_merge(n_branches=2)
        s = ConstraintSolver(g, 3)
        # Wedge the state as far as the engine allows, then every node must
        # still report a non-empty domain.
        rng = np.random.default_rng(0)
        i = 0
        order = [0, 3, 1, 2]
        steps = 0
        while i < 4 and steps < 100:
            steps += 1
            u = order[i]
            dom = s.get_domain(u)
            assert dom.size > 0
            i = s.set_domain(u, int(rng.choice(dom)))

    def test_skip_edge_blocked_by_existing_path(self):
        """With chip edges 0->1->2 in place, a new direct 0->2 edge is
        forbidden; the look-ahead must remove chip 2 from a successor of a
        chip-0 node."""
        b = GraphBuilder("chainy")
        n0 = b.add_node("n0", OpType.INPUT, compute_us=1.0, output_bytes=8.0)
        n1 = b.add_node("n1", OpType.RELU, compute_us=1.0, output_bytes=8.0, inputs=[n0])
        n2 = b.add_node("n2", OpType.RELU, compute_us=1.0, output_bytes=8.0, inputs=[n1])
        n3 = b.add_node("n3", OpType.RELU, compute_us=1.0, output_bytes=8.0, inputs=[n0])
        g = b.build()
        s = ConstraintSolver(g, 3)
        assert s.set_domain(0, 0) == 1
        assert s.set_domain(1, 1) == 2  # edge (0,1)
        assert s.set_domain(2, 2) == 3  # edge (1,2): path 0->1->2 exists
        # n3 consumes n0 (chip 0); placing it on chip 2 would create the
        # direct edge (0,2) alongside the 0->1->2 path: forbidden.
        dom = s.get_domain(3).tolist()
        assert 2 not in dom
        assert 0 in dom and 1 in dom
