"""The eager triangle-frontier flag above 4 chips (PR 2 satellite).

The strengthening defaulted on only for ``n_chips <= 4``; the constructor
flag makes it available at higher chip counts.  The regression risk is
*completeness*: eager re-propagation must never prune a value that some
valid completion uses — checked exhaustively at 8 chips against the
brute-force valid set, and statistically on a wedge-heavy zoo graph.
"""

import numpy as np
import pytest

from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_dataset
from repro.solver.constraints import validate_partition
from repro.solver.engine import ConstraintSolver
from repro.solver.enumerate import enumerate_valid_partitions
from repro.solver.strategies import fix_partition, sample_partition


class TestConstructorFlag:
    def test_heuristic_default(self, diamond_graph):
        assert ConstraintSolver(diamond_graph, 4).triangle_frontier is True
        assert ConstraintSolver(diamond_graph, 8).triangle_frontier is False

    def test_forced_on_above_four_chips(self, diamond_graph):
        solver = ConstraintSolver(diamond_graph, 8, triangle_frontier=True)
        assert solver.triangle_frontier is True

    def test_forced_off_at_tight_chip_count(self, diamond_graph):
        solver = ConstraintSolver(diamond_graph, 4, triangle_frontier=False)
        assert solver.triangle_frontier is False

    def test_partitioner_config_plumbs_through(self, diamond_graph):
        config = RLPartitionerConfig(
            hidden=8, n_sage_layers=1, triangle_frontier=True
        )
        partitioner = RLPartitioner(8, config=config, rng=0)
        assert partitioner._solver_for(diamond_graph).triangle_frontier is True


class TestCompletenessAt8Chips:
    def test_every_valid_partition_survives_eager_frontier(self, diamond_graph):
        """FIX with a valid candidate keeps it verbatim — for every valid
        partition at 8 chips, with the frontier forced on and off."""
        valid = enumerate_valid_partitions(diamond_graph, 8)
        assert valid, "fixture must admit valid partitions"
        for frontier in (True, False):
            solver = ConstraintSolver(
                diamond_graph, 8, triangle_frontier=frontier
            )
            for y in valid:
                if solver.n_decisions:
                    solver.reset()
                repaired = fix_partition(
                    diamond_graph, y, 8, rng=0, solver=solver
                )
                np.testing.assert_array_equal(repaired, y)

    def test_sample_valid_on_wedge_heavy_graph(self):
        """SAMPLE at 8 chips with the frontier forced on: the strengthening
        path actually runs (gru graphs wedge the triangle constraint) and
        every output satisfies the static constraints."""
        graph = build_dataset(seed=0).train[1]  # gru: fan-out/merge motifs
        solver = ConstraintSolver(graph, 8, triangle_frontier=True)
        probs = np.full((graph.n_nodes, 8), 1.0 / 8)
        rng = np.random.default_rng(0)
        for _ in range(4):
            if solver.n_decisions:
                solver.reset()
            y = sample_partition(graph, probs, 8, rng=rng, solver=solver)
            assert validate_partition(graph, y, 8).ok

    def test_flag_survives_reset(self, diamond_graph):
        solver = ConstraintSolver(diamond_graph, 8, triangle_frontier=True)
        probs = np.full((5, 8), 1.0 / 8)
        sample_partition(diamond_graph, probs, 8, rng=1, solver=solver)
        assert solver.triangle_frontier is True
