"""Test package."""
