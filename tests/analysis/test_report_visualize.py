"""Tests for partition analysis and visualization."""

import numpy as np
import pytest

from repro.analysis.report import analyze_partition, format_partition_report
from repro.analysis.visualize import to_dot
from repro.hardware.package import MCMPackage


class TestAnalyzePartition:
    def test_per_chip_totals(self, diamond_graph, roomy_package):
        assignment = np.array([0, 0, 1, 1, 2])
        report = analyze_partition(diamond_graph, assignment, roomy_package)
        np.testing.assert_array_equal(report.node_counts, [2, 2, 1, 0])
        assert report.compute_us[0] == pytest.approx(11.0)
        assert report.param_bytes[1] == 0.0
        assert report.param_bytes[0] == pytest.approx(1000.0)

    def test_link_traffic(self, diamond_graph, roomy_package):
        assignment = np.array([0, 0, 1, 1, 2])
        report = analyze_partition(diamond_graph, assignment, roomy_package)
        # node0 output crosses link 0 once (dedup to chip 1)
        assert report.link_bytes[0] > 0
        assert report.cut_edges >= 2
        assert report.max_hop == 1

    def test_multi_hop(self, chain_graph, roomy_package):
        assignment = np.zeros(10, dtype=int)
        assignment[1:] = 0
        assignment[5] = 1
        assignment[6:] = 3  # hop of 2 from chip 1 to chip 3
        report = analyze_partition(chain_graph, assignment, roomy_package)
        assert report.max_hop == 2
        assert not report.static_ok  # chip 2 skipped

    def test_static_flag(self, chain_graph, roomy_package):
        from repro.core.baselines import greedy_partition

        assignment = greedy_partition(chain_graph, 4)
        report = analyze_partition(chain_graph, assignment, roomy_package)
        assert report.static_ok

    def test_imbalance_metric(self, chain_graph, roomy_package):
        report = analyze_partition(
            chain_graph, np.zeros(10, dtype=int), roomy_package
        )
        assert report.compute_imbalance == pytest.approx(4.0)  # one of four chips
        assert report.used_chips == 1

    def test_format_contains_all_chips(self, diamond_graph, roomy_package):
        report = analyze_partition(
            diamond_graph, np.array([0, 0, 1, 1, 2]), roomy_package
        )
        text = format_partition_report(report)
        for chip in range(4):
            assert f"\n{chip}    |" in text or text.splitlines()[3 + chip].startswith(str(chip))
        assert "cut edges" in text


class TestToDot:
    def test_plain_graph(self, diamond_graph):
        dot = to_dot(diamond_graph)
        assert dot.startswith("digraph")
        assert dot.count("->") == diamond_graph.n_edges
        assert "n0" in dot

    def test_clustered_by_chip(self, diamond_graph):
        dot = to_dot(diamond_graph, np.array([0, 0, 1, 1, 2]))
        assert "cluster_chip0" in dot
        assert "cluster_chip2" in dot

    def test_size_guard(self):
        from repro.graphs.zoo import build_bert

        g = build_bert(layers=4, hidden=256, heads=16, seq=64, target_nodes=None)
        with pytest.raises(ValueError, match="refusing"):
            to_dot(g, max_nodes=100)

    def test_assignment_shape_checked(self, diamond_graph):
        with pytest.raises(ValueError):
            to_dot(diamond_graph, np.zeros(3, dtype=int))
