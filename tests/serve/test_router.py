"""Replicated sharded serving: ring, breakers, failover, hedging, chaos.

Tier-1 tests drive an in-process router over thread-backed shard servers
(same seed everywhere, so replicas are interchangeable bit-for-bit).  The
``chaos``-marked tests spawn real ``repro serve`` subprocesses and SIGKILL
one mid-burst — the acceptance bar is *zero client-visible errors* and
responses bit-identical to a fault-free run.
"""

import json
import urllib.request

import pytest

from repro.graphs.serialization import graph_to_dict
from repro.graphs.zoo import build_cnn, build_mlp
from repro.reliability import Fault, FaultPlan
from repro.serve import (
    CircuitBreaker,
    HashRing,
    PartitionServer,
    RouterConfig,
    RouterServer,
    ShardEndpoint,
    ShardRouter,
    request_partition,
)
from tests.serve.conftest import tiny_service

_RESOLVER = {"mlp": build_mlp, "cnn": build_cnn}


def _payload(graph="mlp", chips=4, samples=4, **extra):
    payload = {
        "graph": graph_to_dict(_RESOLVER[graph]()),
        "chips": chips,
        "samples": samples,
    }
    payload.update(extra)
    return payload


class _Cluster:
    """N thread-backed shards plus a router over them (in-process tier-1
    stand-in for the subprocess deployment)."""

    def __init__(self, n_shards=2, config=None, **shard_overrides):
        self.servers = []
        shards = []
        for i in range(n_shards):
            srv = PartitionServer(
                tiny_service(shard_id=f"s{i}", **shard_overrides), port=0
            ).start()
            self.servers.append(srv)
            shards.append(
                ShardEndpoint(shard_id=f"s{i}", host=srv.host, port=srv.port)
            )
        self.router = ShardRouter(
            shards,
            config=config
            or RouterConfig(replication=2, probe_interval_s=0.0),
        )

    def kill(self, shard_id: str) -> None:
        """Hard-stop one shard's HTTP server (the in-process 'crash')."""
        self.servers[int(shard_id[1:])].shutdown()

    def close(self) -> None:
        self.router.close()
        for srv in self.servers:
            srv.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(["s0", "s1", "s2"], vnodes=64)
        b = HashRing(["s2", "s0", "s1"], vnodes=64)  # insertion order differs
        for key in ("alpha", "beta", "gamma", "delta"):
            assert a.replicas(key, 2) == b.replicas(key, 2)

    def test_replicas_are_distinct_shards(self):
        ring = HashRing([f"s{i}" for i in range(5)], vnodes=32)
        for key in map(str, range(50)):
            reps = ring.replicas(key, 3)
            assert len(reps) == 3
            assert len(set(reps)) == 3

    def test_replicas_capped_by_membership(self):
        ring = HashRing(["s0", "s1"])
        assert sorted(ring.replicas("k", 5)) == ["s0", "s1"]
        assert HashRing().replicas("k", 2) == []

    def test_removal_moves_minimal_keyspace(self):
        """Consistent hashing's point: dropping one of N shards re-routes
        roughly 1/N of keys, never reshuffles everything."""
        ids = [f"s{i}" for i in range(4)]
        before = HashRing(ids, vnodes=64)
        keys = [f"key-{i}" for i in range(400)]
        primary_before = {k: before.replicas(k, 1)[0] for k in keys}
        before.remove("s2")
        moved = sum(
            1
            for k in keys
            if primary_before[k] != "s2"
            and before.replicas(k, 1)[0] != primary_before[k]
        )
        assert moved == 0  # survivors' keys never move on a removal
        orphans = [k for k in keys if primary_before[k] == "s2"]
        assert orphans  # the dropped shard owned some keyspace

    def test_distribution_roughly_balanced(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=64)
        counts = {f"s{i}": 0 for i in range(4)}
        n = 2000
        for i in range(n):
            counts[ring.replicas(f"key-{i}", 1)[0]] += 1
        for c in counts.values():
            assert 0.1 * n < c < 0.5 * n  # no starving, no hot-spotting

    def test_duplicate_shard_rejected(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add("s0")


class TestCircuitBreaker:
    def test_full_state_machine(self):
        t = [0.0]
        br = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=5.0, clock=lambda: t[0]
        )
        assert br.state == "closed" and br.admit()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # below threshold
        br.record_failure()
        assert br.state == "open"
        assert not br.admit()  # open refuses until the reset window
        t[0] = 5.1
        assert br.admit()  # half-open trial
        assert br.state == "half_open"
        assert not br.admit()  # exactly one trial in flight
        br.record_failure()
        assert br.state == "open"  # failed trial re-opens
        t[0] = 10.5
        assert br.admit()
        br.record_success()
        assert br.state == "closed"
        snap = br.snapshot()
        assert snap["opened_total"] == 2
        assert snap["transitions"]["closed->open"] == 1
        assert snap["transitions"]["half_open->open"] == 1
        assert snap["transitions"]["half_open->closed"] == 1

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"  # failures must be *consecutive*


class TestRoutingKey:
    def test_same_request_same_replica_set(self):
        with _Cluster(n_shards=3) as c:
            k1 = c.router.routing_key(_payload())
            k2 = c.router.routing_key(_payload())
            assert k1 == k2
            assert c.router.ring.replicas(k1, 2) == c.router.ring.replicas(
                k2, 2
            )

    def test_different_requests_can_differ(self):
        with _Cluster(n_shards=3) as c:
            keys = {
                c.router.routing_key(_payload("mlp")),
                c.router.routing_key(_payload("cnn")),
                c.router.routing_key(_payload("mlp", chips=8)),
                c.router.routing_key(_payload("mlp", samples=6)),
            }
            assert len(keys) == 4  # everything result-relevant is folded in

    def test_bad_request_is_422_not_routed(self):
        with _Cluster() as c:
            status, reply = c.router.handle_partition({"chips": 4})
            assert status == 422
            assert "graph" in reply["error"]
            assert c.router.metrics()["client_errors"] == 1


class TestFailover:
    def test_dead_primary_fails_over_bit_identical(self):
        """Kill the *primary* replica: the request still succeeds, from the
        secondary, with the exact same bits a healthy cluster serves."""
        with _Cluster(n_shards=2) as c:
            payload = _payload()
            status, healthy_reply = c.router.handle_partition(payload)
            assert status == 200
            key = c.router.routing_key(payload)
            primary = c.router.ring.replicas(key, 2)[0]
            c.kill(primary)
            status, reply = c.router.handle_partition(payload)
            assert status == 200
            assert reply["assignment"] == healthy_reply["assignment"]
            assert reply["fingerprint"] == healthy_reply["fingerprint"]
            m = c.router.metrics()
            assert m["failovers"] >= 1
            assert m["shards"][primary]["failures"] >= 1

    def test_consecutive_failures_open_breaker_then_skip(self):
        with _Cluster(
            n_shards=2,
            config=RouterConfig(
                replication=2,
                probe_interval_s=0.0,
                failure_threshold=2,
                breaker_reset_s=60.0,
                hedge=False,
            ),
        ) as c:
            payload = _payload()
            key = c.router.routing_key(payload)
            primary = c.router.ring.replicas(key, 2)[0]
            c.kill(primary)
            for _ in range(2):  # enough consecutive failures to trip
                status, _ = c.router.handle_partition(payload)
                assert status == 200
            snap = c.router.metrics()["shards"][primary]["breaker"]
            assert snap["state"] == "open"
            assert snap["transitions"]["closed->open"] == 1
            failovers_before = c.router.metrics()["failovers"]
            status, _ = c.router.handle_partition(payload)
            assert status == 200
            # Breaker-open means the dead primary is skipped outright:
            # no attempt, no new failover hop.
            assert c.router.metrics()["failovers"] == failovers_before

    def test_probes_open_and_close_breakers(self):
        with _Cluster(
            n_shards=2,
            config=RouterConfig(
                replication=2,
                probe_interval_s=0.0,  # probes driven manually
                failure_threshold=2,
            ),
        ) as c:
            c.kill("s1")
            for _ in range(2):
                c.router.probe_all()
            shard = c.router.metrics()["shards"]["s1"]
            assert shard["breaker"]["state"] == "open"
            assert shard["health"]["healthy"] is False
            assert shard["health"]["consecutive_probe_failures"] == 2
            assert c.router.metrics()["shards"]["s0"]["breaker"]["state"] == (
                "closed"
            )

    def test_client_error_is_forwarded_not_failed_over(self):
        """A 422 is an answer about the request, not a shard failure: no
        failover (every replica would agree), no breaker damage."""
        with _Cluster(n_shards=2) as c:
            status, reply = c.router.handle_partition(
                _payload(objective="nonsense")
            )
            assert status == 422
            assert "objective" in reply["error"]
            m = c.router.metrics()
            assert m["failovers"] == 0
            assert m["client_errors"] == 1
            for shard in m["shards"].values():
                assert shard["breaker"]["state"] == "closed"

    def test_all_replicas_down_serves_degraded_greedy(self):
        with _Cluster(n_shards=2) as c:
            payload = _payload()
            c.kill("s0")
            c.kill("s1")
            status, reply = c.router.handle_partition(payload)
            assert status == 200  # degrade, don't fail
            assert reply["degraded"] is True
            assert reply["degraded_reason"] == "all_replicas_down"
            assert reply["source"] == "degraded"
            assert reply["cached"] is False
            m = c.router.metrics()
            assert m["all_replicas_down"] == 1
            assert m["degraded_serves"] == 1
            # A degraded answer is still a full, in-range partition.
            assert len(reply["assignment"]) == build_mlp().n_nodes
            assert all(0 <= a < 4 for a in reply["assignment"])


class TestHedging:
    def test_stalled_primary_hedge_wins_bit_identical(self):
        """``shard_stall`` wedges the primary; the hedge fires after the
        delay, the secondary answers first, and the bits match a calm run."""
        with _Cluster(n_shards=2) as c:
            payload = _payload()
            _, healthy_reply = c.router.handle_partition(payload)
            key = c.router.routing_key(payload)
            primary = c.router.ring.replicas(key, 2)[0]
            plan = FaultPlan(
                [Fault(site="shard_stall", kind="stall", at=(primary,),
                       delay_s=5.0)]
            )
            hedged = ShardRouter(
                [s.endpoint for s in c.router._shards.values()],
                config=RouterConfig(
                    replication=2,
                    probe_interval_s=0.0,
                    hedge_min_s=0.05,
                    fault_plan=plan,
                ),
            )
            try:
                status, reply = hedged.handle_partition(payload)
                assert status == 200
                assert reply["assignment"] == healthy_reply["assignment"]
                m = hedged.metrics()
                assert m["hedges_fired"] == 1
                assert m["hedge_wins"] == 1
                assert m["failovers"] == 0  # slow is not failed
                assert m["fault_plan"][0]["remaining"] == 0
            finally:
                hedged.close()

    def test_hedge_disabled_never_fires(self):
        with _Cluster(
            n_shards=2,
            config=RouterConfig(
                replication=2, probe_interval_s=0.0, hedge=False
            ),
        ) as c:
            for _ in range(3):
                status, _ = c.router.handle_partition(_payload())
                assert status == 200
            assert c.router.metrics()["hedges_fired"] == 0

    def test_network_partition_fault_fails_over(self):
        """An injected partition drops the transport without touching the
        process: the router fails over; the shard itself stays healthy."""
        with _Cluster(n_shards=2) as c:
            payload = _payload()
            key = c.router.routing_key(payload)
            primary = c.router.ring.replicas(key, 2)[0]
            plan = FaultPlan(
                [Fault(site="network_partition", kind="partition",
                       at=(primary,))]
            )
            cut = ShardRouter(
                [s.endpoint for s in c.router._shards.values()],
                config=RouterConfig(
                    replication=2, probe_interval_s=0.0, hedge=False,
                    fault_plan=plan,
                ),
            )
            try:
                status, reply = cut.handle_partition(payload)
                assert status == 200
                assert not reply.get("degraded")
                m = cut.metrics()
                assert m["failovers"] == 1
                assert m["faults"]["fired_by_site"] == {
                    "network_partition": 1
                }
            finally:
                cut.close()


class TestRouterServer:
    def test_wire_compatible_with_shard_clients(self):
        """`request_partition` / `/metrics` / `/healthz` all work against a
        router exactly as they do against a single shard."""
        with _Cluster(n_shards=2) as c:
            with RouterServer(c.router, port=0).start() as front:
                reply = request_partition(_payload(), port=front.port)
                assert reply["source"] in ("cold", "cached")
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{front.port}/metrics", timeout=30
                ) as resp:
                    metrics = json.loads(resp.read())
                assert metrics["router"] is True
                assert metrics["requests_total"] == 1
                assert set(metrics["shards"]) == {"s0", "s1"}
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{front.port}/healthz", timeout=30
                ) as resp:
                    health = json.loads(resp.read())
                assert health["ok"] is True
                assert health["degraded_only"] is False

    def test_unknown_path_404(self):
        with _Cluster() as c:
            with RouterServer(c.router, port=0).start() as front:
                import urllib.error

                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{front.port}/nope", timeout=30
                    )
                assert err.value.code == 404


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            RouterConfig(replication=0)
        with pytest.raises(ValueError, match="vnodes"):
            RouterConfig(vnodes=0)
        with pytest.raises(ValueError, match="hedge_min_s"):
            RouterConfig(hedge_min_s=0.5, hedge_max_s=0.1)

    def test_router_needs_shards_and_unique_ids(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter([])
        dup = [
            ShardEndpoint("s0", "127.0.0.1", 1),
            ShardEndpoint("s0", "127.0.0.1", 2),
        ]
        with pytest.raises(ValueError, match="duplicate shard ids"):
            ShardRouter(dup, config=RouterConfig(probe_interval_s=0.0))


@pytest.mark.chaos
class TestChaosSubprocessShards:
    """The acceptance bar: real shard processes, a SIGKILL mid-burst, and
    not a single client-visible error or changed bit."""

    def _spawn_router(self, n_shards=2, fault_plan=None):
        return ShardRouter.spawn(
            n_shards,
            config=RouterConfig(
                replication=2,
                probe_interval_s=0.5,
                failure_threshold=2,
                breaker_reset_s=1.0,
                hedge_max_s=1.0,
                fault_plan=fault_plan,
            ),
            seed=0,
        )

    def test_shard_kill_mid_burst_zero_errors_bit_identical(self):
        payloads = [
            _payload("mlp", chips=4),
            _payload("cnn", chips=4),
            _payload("mlp", chips=8),
            _payload("mlp", chips=4, objective="latency"),
        ]
        burst = payloads * 3  # repeats exercise the shard caches too

        calm = self._spawn_router()
        try:
            baseline = [calm.handle_partition(p) for p in burst]
        finally:
            calm.close()
        assert all(status == 200 for status, _ in baseline)
        assert not any(reply.get("degraded") for _, reply in baseline)

        # Same burst, but the first forward to payload[0]'s primary
        # SIGKILLs that shard process under the router.  The victim is
        # computable without spawning anything: ring placement is a pure
        # function of (shard ids, vnodes, routing key).
        from repro.serve import routing_key as routing_key_fn
        from repro.serve import request_from_payload

        key = routing_key_fn(request_from_payload(payloads[0]))
        victim = HashRing(["s0", "s1"], vnodes=64).replicas(key, 1)[0]
        plan = FaultPlan(
            [Fault(site="shard_kill", kind="kill", at=(victim,))]
        )
        chaotic = self._spawn_router(fault_plan=plan)
        try:
            replies = [chaotic.handle_partition(p) for p in burst]
            metrics = chaotic.metrics()
        finally:
            chaotic.close()

        # Zero client-visible errors...
        assert all(status == 200 for status, _ in replies)
        # ...no degraded serves (a replica survived)...
        assert all(not reply.get("degraded") for _, reply in replies)
        # ...bit-identical to the fault-free run (fingerprint-seeded
        # determinism makes replicas interchangeable)...
        for (_, calm_reply), (_, chaos_reply) in zip(baseline, replies):
            assert chaos_reply["assignment"] == calm_reply["assignment"]
            assert chaos_reply["fingerprint"] == calm_reply["fingerprint"]
            assert chaos_reply["improvement"] == calm_reply["improvement"]
        # ...and the router's metrics tell the story.
        assert metrics["faults"]["fired_by_site"] == {"shard_kill": 1}
        assert metrics["failovers"] >= 1
        assert metrics["shards"][victim]["failures"] >= 1
        assert not metrics["shards"][victim]["process_alive"]
        transitions = metrics["shards"][victim]["breaker"]["transitions"]
        assert transitions.get("closed->open", 0) >= 1

    def test_router_front_survives_shard_kill(self):
        """End-to-end over HTTP: clients of the router front door never see
        the shard die either."""
        plan = FaultPlan(
            [Fault(site="shard_kill", kind="kill", at=())]  # first forward
        )
        router = self._spawn_router(fault_plan=plan)
        try:
            with RouterServer(router, port=0).start() as front:
                for _ in range(4):
                    reply = request_partition(_payload(), port=front.port)
                    assert not reply.get("degraded")
                metrics = json.loads(
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{front.port}/metrics", timeout=30
                    ).read()
                )
            assert metrics["failovers"] >= 1
            assert metrics["requests_total"] == 4
        finally:
            router.close()
