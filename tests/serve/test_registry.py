"""Checkpoint registry + warm partitioner pool."""

import numpy as np
import pytest

from repro.core.partitioner import RLPartitioner
from repro.graphs.zoo import build_mlp
from repro.hardware.topology import Mesh2D, UniRing
from repro.serve.registry import (
    CheckpointRegistry,
    RegistryError,
    WarmPartitionerPool,
)
from tests.serve.conftest import tiny_rl_config


@pytest.fixture
def registry(tmp_path):
    return CheckpointRegistry(str(tmp_path / "registry"))


def _partitioner(n_chips=4, seed=0, topology=None) -> RLPartitioner:
    return RLPartitioner(n_chips, config=tiny_rl_config(), rng=seed,
                         topology=topology)


class TestRegistry:
    def test_publish_versions_latest(self, registry):
        p = _partitioner()
        assert registry.versions("prod") == []
        assert registry.publish_partitioner("prod", p) == 1
        assert registry.publish_partitioner("prod", p) == 2
        assert registry.versions("prod") == [1, 2]
        assert registry.latest("prod") == 2
        assert registry.resolve("prod", None) == ("prod", 2)
        assert registry.resolve("prod", 1) == ("prod", 1)
        assert registry.names() == ["prod"]

    def test_load_roundtrips_weights_and_metadata(self, registry):
        p = _partitioner(seed=7)
        registry.publish_partitioner("prod", p, metadata={"note": "seed7"})
        state, meta = registry.load("prod")
        for key, value in p.state_dict().items():
            np.testing.assert_array_equal(state[key], value)
        assert meta["n_chips"] == 4
        assert meta["network"]["hidden"] == 16
        assert meta["network"]["topology_conditioned"] is False
        assert meta["metadata"] == {"note": "seed7"}

    def test_unknown_name_and_version(self, registry):
        with pytest.raises(RegistryError):
            registry.latest("ghost")
        registry.publish_partitioner("prod", _partitioner())
        with pytest.raises(RegistryError):
            registry.resolve("prod", 9)

    def test_invalid_names_rejected(self, registry):
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(RegistryError):
                registry.publish(bad, {}, n_chips=4)

    def test_names_skips_foreign_directory_entries(self, registry, tmp_path):
        """Dot-directories and stray files in the registry root must not
        break listing."""
        import os

        registry.publish_partitioner("prod", _partitioner())
        os.makedirs(os.path.join(registry.root, ".backup"))
        with open(os.path.join(registry.root, "README"), "w") as fh:
            fh.write("not a checkpoint")
        assert registry.names() == ["prod"]


class TestWarmPool:
    def test_untrained_pool_reuses_partitioner(self):
        pool = WarmPartitionerPool(config=tiny_rl_config())
        p1, cold1 = pool.get(4)
        p2, cold2 = pool.get(4)
        assert cold1 and not cold2
        assert p1 is p2
        assert pool.builds == 1 and pool.weight_loads == 0

    def test_checkpoint_weights_load_exactly_once(self, registry):
        """The serving discipline: a request stream against one checkpoint
        pays the weight load once, not per request."""
        trained = _partitioner(seed=3)
        registry.publish_partitioner("prod", trained)
        pool = WarmPartitionerPool(registry, config=tiny_rl_config())
        p1, cold = pool.get(4, checkpoint="prod")
        assert cold and pool.weight_loads == 1
        for _ in range(5):
            p, cold = pool.get(4, checkpoint="prod")
            assert p is p1 and not cold
        assert pool.weight_loads == 1
        for key, value in trained.state_dict().items():
            np.testing.assert_array_equal(p1.state_dict()[key], value)

    def test_perturbed_weights_trigger_reload(self, registry):
        """install_checkpoint's version guard: touching the weights between
        requests forces a reload rather than serving stale parameters."""
        registry.publish_partitioner("prod", _partitioner(seed=3))
        pool = WarmPartitionerPool(registry, config=tiny_rl_config())
        p, _ = pool.get(4, checkpoint="prod")
        p.policy.parameters()[0].data += 1.0
        p.policy.parameters()[0].bump_version()
        pool.get(4, checkpoint="prod")
        assert pool.weight_loads == 2

    def test_version_pinning_distinct_entries(self, registry):
        p = _partitioner(seed=1)
        registry.publish_partitioner("prod", p)
        registry.publish_partitioner("prod", p)
        pool = WarmPartitionerPool(registry, config=tiny_rl_config())
        a, _ = pool.get(4, checkpoint="prod", version=1)
        b, _ = pool.get(4, checkpoint="prod", version=2)
        latest, cold = pool.get(4, checkpoint="prod")  # resolves to v2
        assert a is not b and latest is b and not cold

    def test_chip_count_mismatch_rejected(self, registry):
        registry.publish_partitioner("prod", _partitioner(n_chips=4))
        pool = WarmPartitionerPool(registry, config=tiny_rl_config())
        with pytest.raises(RegistryError, match="trained for"):
            pool.get(8, checkpoint="prod")

    def test_legacy_checkpoint_cannot_serve_mesh(self, registry):
        registry.publish_partitioner("prod", _partitioner(n_chips=4))
        pool = WarmPartitionerPool(registry, config=tiny_rl_config())
        with pytest.raises(RegistryError, match="uni-ring"):
            pool.get(4, topology=Mesh2D(2, 2), checkpoint="prod")

    def test_conditioned_checkpoint_serves_uniring_and_mesh(self, registry):
        conditioned = _partitioner(topology=UniRing(4))
        registry.publish_partitioner("prod", conditioned)
        pool = WarmPartitionerPool(registry, config=tiny_rl_config())
        ring, _ = pool.get(4, checkpoint="prod")
        mesh, _ = pool.get(4, topology=Mesh2D(2, 2), checkpoint="prod")
        assert ring.topology is not None and mesh.topology is not None
        assert pool.weight_loads == 2  # distinct pool entries

    def test_checkpoint_without_registry_rejected(self):
        pool = WarmPartitionerPool(config=tiny_rl_config())
        with pytest.raises(RegistryError, match="no checkpoint registry"):
            pool.get(4, checkpoint="prod")

    def test_lru_eviction_bounds_live_partitioners(self):
        pool = WarmPartitionerPool(capacity=2, config=tiny_rl_config())
        a, _ = pool.get(2)
        pool.get(3)
        pool.get(4)  # evicts the 2-chip entry
        assert len(pool) == 2
        rebuilt, cold = pool.get(2)
        assert cold and rebuilt is not a

    def test_pool_partitioner_actually_searches(self):
        """End-to-end sanity: a pooled partitioner serves a real search."""
        from repro.core.environment import PartitionEnvironment
        from repro.hardware.analytical import AnalyticalCostModel
        from repro.hardware.package import MCMPackage

        pool = WarmPartitionerPool(config=tiny_rl_config())
        partitioner, _ = pool.get(4)
        graph = build_mlp()
        env = PartitionEnvironment(
            graph, AnalyticalCostModel(MCMPackage(n_chips=4)), 4
        )
        result = partitioner.search(env, 4, train=False)
        assert result.best_assignment is not None


class TestCrashSafety:
    """Atomic publish + checksum-verified load (the reliability layer)."""

    def _corrupt_npz(self, registry, name, version):
        import os

        path = os.path.join(registry.root, name, f"v{version:04d}.npz")
        with open(path, "r+b") as fh:
            fh.seek(120)
            byte = fh.read(1)
            fh.seek(120)
            fh.write(bytes([byte[0] ^ 0xFF]))

    def test_publish_records_weights_checksum(self, registry):
        registry.publish_partitioner("prod", _partitioner())
        _, meta = registry.load("prod")
        assert len(meta["weights_sha256"]) == 64

    def test_interrupted_publish_leaves_nothing_visible(self, tmp_path):
        from repro.reliability import Fault, FaultPlan, InjectedIOError

        plan = FaultPlan(
            [Fault(site="registry", kind="io_error", at=("publish",))]
        )
        registry = CheckpointRegistry(str(tmp_path / "reg"), fault_plan=plan)
        with pytest.raises(InjectedIOError):
            registry.publish_partitioner("prod", _partitioner())
        # no torn version, no stray temp files, and publishing again works
        assert registry.versions("prod") == []
        assert registry.publish_partitioner("prod", _partitioner()) == 1
        import os

        strays = [
            f
            for f in os.listdir(os.path.join(registry.root, "prod"))
            if f.startswith(".tmp")
        ]
        assert strays == []

    def test_corrupt_weights_detected_on_load(self, registry):
        version = registry.publish_partitioner("prod", _partitioner())
        self._corrupt_npz(registry, "prod", version)
        with pytest.raises(RegistryError, match="corrupt") as excinfo:
            registry.load("prod")
        assert excinfo.value.degradable is True

    def test_client_errors_are_not_degradable(self, registry):
        with pytest.raises(RegistryError) as excinfo:
            registry.latest("ghost")
        assert excinfo.value.degradable is False

    def test_load_fault_raises_oserror(self, tmp_path):
        from repro.reliability import Fault, FaultPlan, InjectedIOError

        clean = CheckpointRegistry(str(tmp_path / "reg"))
        clean.publish_partitioner("prod", _partitioner())
        plan = FaultPlan(
            [Fault(site="registry", kind="io_error", at=("load",))]
        )
        faulty = CheckpointRegistry(str(tmp_path / "reg"), fault_plan=plan)
        with pytest.raises(InjectedIOError):
            faulty.load("prod")
        # fault spent: the next load succeeds
        state, _ = faulty.load("prod")
        assert state
