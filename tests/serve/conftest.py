"""Shared fixtures for the serving-layer tests: tiny, fast configurations."""

import pytest

from repro.core.partitioner import RLPartitionerConfig
from repro.rl.ppo import PPOConfig
from repro.serve import PartitionService, ServiceConfig


def tiny_rl_config(**overrides) -> RLPartitionerConfig:
    """A minimal policy network: serving tests measure plumbing, not quality."""
    kwargs = dict(
        hidden=16,
        n_sage_layers=1,
        n_policy_layers=1,
        refine_iters=1,
        ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
    )
    kwargs.update(overrides)
    return RLPartitionerConfig(**kwargs)


def tiny_service(registry=None, **config_overrides) -> PartitionService:
    """A service wired with the tiny network and a small default budget."""
    kwargs = dict(default_samples=6, cache_capacity=32, seed=0)
    kwargs.update(config_overrides)
    return PartitionService(
        ServiceConfig(**kwargs),
        registry=registry,
        partitioner_config=tiny_rl_config(),
    )


@pytest.fixture
def service() -> PartitionService:
    return tiny_service()
