"""Crash-safe persistent cache: journal replay, corruption, degradation."""

import os

import numpy as np
import pytest

from repro.reliability import Fault, FaultPlan
from repro.serve import CachedPartition, PersistentPartitionCache


def _entry(fp: str, n: int = 6, chips: int = 3) -> CachedPartition:
    rng = np.random.default_rng(abs(hash(fp)) % (2**32))
    return CachedPartition(
        fingerprint=fp,
        assignment=rng.integers(0, chips, size=n),
        improvement=float(rng.random()),
        node_order=np.arange(n, dtype=np.int64),
        objective="throughput",
        throughput=123.0,
        latency_us=45.0,
        metadata={"graph": fp},
    )


class TestRestartRoundtrip:
    def test_entries_survive_restart(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        entries = {f"fp{i}": _entry(f"fp{i}") for i in range(3)}
        for key, entry in entries.items():
            cache.put(key, entry)
        cache.close()

        warm = PersistentPartitionCache(8, directory=tmp_path)
        assert warm.stats()["warm_entries"] == 3
        for key, entry in entries.items():
            got = warm.get(key)
            assert got is not None
            np.testing.assert_array_equal(got.assignment, entry.assignment)
            assert got.improvement == entry.improvement
            assert got.metadata == entry.metadata

    def test_unclosed_journal_also_replays(self, tmp_path):
        # No close()/compact(): the append-only journal alone must be
        # enough (that's the crash case).
        cache = PersistentPartitionCache(8, directory=tmp_path)
        cache.put("fp0", _entry("fp0"))
        del cache
        warm = PersistentPartitionCache(8, directory=tmp_path)
        assert warm.get("fp0") is not None

    def test_replay_does_not_skew_hit_stats(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        cache.put("fp0", _entry("fp0"))
        cache.get("fp0")
        cache.close()
        warm = PersistentPartitionCache(8, directory=tmp_path)
        stats = warm.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["evictions"] == 0


class TestRecency:
    def test_lru_recency_survives_restart(self, tmp_path):
        cache = PersistentPartitionCache(2, directory=tmp_path)
        cache.put("a", _entry("a"))
        cache.put("b", _entry("b"))
        cache.get("a")  # journalled touch: 'a' is now most recent
        cache.close()

        warm = PersistentPartitionCache(2, directory=tmp_path)
        warm.put("c", _entry("c"))  # must evict 'b', not 'a'
        assert warm.get("a") is not None
        assert warm.get("c") is not None
        assert warm.get("b") is None

    def test_capacity_enforced_on_replay(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        for i in range(6):
            cache.put(f"fp{i}", _entry(f"fp{i}"))
        cache.close()
        small = PersistentPartitionCache(2, directory=tmp_path)
        assert len(small) == 2
        # the two most recent puts survive
        assert small.get("fp5") is not None
        assert small.get("fp4") is not None


class TestCorruption:
    def test_bit_flip_skipped_not_fatal(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        for i in range(3):
            cache.put(f"fp{i}", _entry(f"fp{i}"))
        cache.close()
        path = cache.journal_path
        lines = open(path, "r", encoding="utf-8").readlines()
        # flip one byte inside the payload of the middle record
        mid = list(lines[1])
        mid[30] = "X" if mid[30] != "X" else "Y"
        lines[1] = "".join(mid)
        open(path, "w", encoding="utf-8").writelines(lines)

        warm = PersistentPartitionCache(8, directory=tmp_path)
        assert warm.stats()["corrupt_skipped"] == 1
        assert warm.get("fp0") is not None
        assert warm.get("fp1") is None  # the corrupt record
        assert warm.get("fp2") is not None

    def test_torn_final_line_skipped(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        cache.put("fp0", _entry("fp0"))
        cache.put("fp1", _entry("fp1"))
        cache.close()
        path = cache.journal_path
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) - 40])  # tear mid-record

        warm = PersistentPartitionCache(8, directory=tmp_path)
        assert warm.stats()["corrupt_skipped"] == 1
        assert warm.get("fp0") is not None
        assert warm.get("fp1") is None

    def test_garbage_journal_yields_empty_cache(self, tmp_path):
        path = os.path.join(tmp_path, "journal.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not a journal\nat all\n")
        cache = PersistentPartitionCache(8, directory=tmp_path)
        assert len(cache) == 0
        assert cache.stats()["corrupt_skipped"] == 2
        # and it keeps working
        cache.put("fp0", _entry("fp0"))
        assert cache.get("fp0") is not None


class TestCompaction:
    def test_compaction_bounds_journal(self, tmp_path):
        cache = PersistentPartitionCache(
            4, directory=tmp_path, compact_every=6
        )
        for i in range(12):
            cache.put(f"fp{i}", _entry(f"fp{i}"))
        lines = [
            line
            for line in open(cache.journal_path, encoding="utf-8")
            if line.strip()
        ]
        # compacted journal holds at most capacity puts + appends since
        assert len(lines) <= 4 + 6
        warm = PersistentPartitionCache(4, directory=tmp_path)
        assert warm.get("fp11") is not None

    def test_clear_compacts_to_empty(self, tmp_path):
        cache = PersistentPartitionCache(4, directory=tmp_path)
        cache.put("fp0", _entry("fp0"))
        cache.clear()
        warm = PersistentPartitionCache(4, directory=tmp_path)
        assert len(warm) == 0


class TestIOFaultDegradation:
    def test_append_fault_disables_journal_keeps_serving(self, tmp_path):
        plan = FaultPlan([Fault(site="cache", kind="io_error", times=-1)])
        cache = PersistentPartitionCache(
            8, directory=tmp_path, fault_plan=plan
        )
        cache.put("fp0", _entry("fp0"))
        assert cache.stats()["persist_errors"] >= 1
        # in-memory serving unaffected
        assert cache.get("fp0") is not None
        cache.put("fp1", _entry("fp1"))
        assert cache.get("fp1") is not None

    def test_compact_fault_preserves_previous_journal(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        cache.put("fp0", _entry("fp0"))
        cache.close()
        plan = FaultPlan(
            [Fault(site="cache", kind="io_error", at=("compact",))]
        )
        faulty = PersistentPartitionCache(
            8, directory=tmp_path, fault_plan=plan
        )
        faulty.compact()  # injected failure
        assert faulty.stats()["persist_errors"] == 1
        warm = PersistentPartitionCache(8, directory=tmp_path)
        assert warm.get("fp0") is not None  # old journal intact


class TestStats:
    def test_stats_mark_persistence(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        stats = cache.stats()
        assert stats["persistent"] is True
        assert stats["journal_path"] == cache.journal_path
        assert stats["corrupt_skipped"] == 0
        assert stats["persist_errors"] == 0


class TestCompactionRace:
    """Compaction vs live serving: the journal handle swap and the LRU
    iteration must be invisible to concurrent puts/gets (the threaded HTTP
    server and the sharded router both hammer one cache from many threads).
    """

    def test_touch_after_compact_lands_in_new_journal(self, tmp_path):
        cache = PersistentPartitionCache(8, directory=tmp_path)
        for key in ("a", "b", "c"):
            cache.put(key, _entry(key))
        cache.compact()
        assert cache.get("a") is not None  # recency event post-compaction
        cache.close()
        warm = PersistentPartitionCache(8, directory=tmp_path)
        # Touch survived the journal swap: 'a' is most recent on restart.
        assert list(warm.keys()) == ["b", "c", "a"]
        assert warm.stats()["corrupt_skipped"] == 0

    def test_concurrent_puts_during_compaction(self, tmp_path):
        import threading

        cache = PersistentPartitionCache(
            64, directory=tmp_path, compact_every=8
        )
        stop = threading.Event()
        errors = []

        def hammer(tid: int) -> None:
            try:
                i = 0
                while not stop.is_set():
                    key = f"w{tid}-{i % 20}"
                    cache.put(key, _entry(key))
                    cache.get(key)
                    i += 1
            except Exception as exc:  # noqa: BLE001 - the race under test
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        # Meanwhile, force explicit compactions on top of the threshold-
        # triggered ones: every handle swap races the writers.
        for _ in range(25):
            cache.compact()
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors  # no write-to-closed-handle, no dict mutation
        assert cache.stats()["persist_errors"] == 0
        order = list(cache.keys())
        cache.close()
        warm = PersistentPartitionCache(64, directory=tmp_path)
        # The surviving journal replays to exactly the live LRU state.
        assert list(warm.keys()) == order
        assert warm.stats()["corrupt_skipped"] == 0
        for key in order:
            assert warm.get(key) is not None
