"""PartitionService: caching, batching, determinism, metrics, latency."""

import numpy as np
import pytest

from repro.graphs.serialization import load_graph, save_graph
from repro.graphs.zoo import build_cnn, build_mlp
from repro.hardware.topology import Mesh2D
from repro.serve import (
    CheckpointRegistry,
    PartitionRequest,
    ServiceError,
)
from tests.conftest import random_dag
from tests.serve.conftest import tiny_rl_config, tiny_service


class TestCaching:
    def test_cold_then_cached_bit_identical(self, service):
        graph = build_mlp()
        first = service.submit(PartitionRequest(graph=graph, n_chips=4))
        assert not first.cached and first.source == "cold"
        second = service.submit(PartitionRequest(graph=graph, n_chips=4))
        assert second.cached and second.source == "cached"
        assert second.fingerprint == first.fingerprint
        np.testing.assert_array_equal(second.assignment, first.assignment)
        assert second.improvement == first.improvement

    def test_roundtripped_graph_hits_the_same_entry(self, service, tmp_path):
        """A graph reloaded from disk is the same content — same cache
        entry, no recompute."""
        graph = build_mlp()
        first = service.submit(PartitionRequest(graph=graph, n_chips=4))
        path = str(tmp_path / "g.npz")
        save_graph(graph, path)
        second = service.submit(
            PartitionRequest(graph=load_graph(path), n_chips=4)
        )
        assert second.cached
        np.testing.assert_array_equal(second.assignment, first.assignment)

    def test_permuted_graph_hit_is_remapped_to_requesters_node_order(
        self, service
    ):
        """The fingerprint is insertion-order invariant, and so is the
        *served partition*: a hit for a node-permuted copy of a cached
        graph comes back remapped onto the requester's node ids — valid
        for its DAG, equivalent cost — not as the producer's raw array."""
        from repro.graphs.builders import GraphBuilder
        from repro.graphs.ops import OpType
        from repro.solver.constraints import validate_partition

        def chain(order):
            spec = {
                "a": (OpType.INPUT, 0.0), "b": (OpType.MATMUL, 9.0),
                "c": (OpType.RELU, 1.0), "d": (OpType.MATMUL, 7.0),
                "e": (OpType.ADD, 2.0), "f": (OpType.MATMUL, 8.0),
            }
            edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")]
            builder = GraphBuilder("chain")
            ids = {}
            for name in order:
                op, cost = spec[name]
                ids[name] = builder.add_node(
                    name, op, compute_us=cost, output_bytes=64.0
                )
            for s, d in edges:
                builder.add_edge(ids[s], ids[d])
            return builder.build(), ids

        forward, _ = chain(["a", "b", "c", "d", "e", "f"])
        backward, ids = chain(["f", "e", "d", "c", "b", "a"])
        cold = service.submit(PartitionRequest(graph=forward, n_chips=3))
        hit = service.submit(PartitionRequest(graph=backward, n_chips=3))
        assert hit.cached
        assert validate_partition(backward, hit.assignment, 3).ok
        assert hit.improvement == cold.improvement
        # Same placement per *named* node, not per node id.
        for pos, name in enumerate(["a", "b", "c", "d", "e", "f"]):
            assert hit.assignment[ids[name]] == cold.assignment[pos]

    def test_indistinguishable_twin_nodes_never_alias_across_orders(self):
        """When two nodes are truly indistinguishable (same name, attrs,
        neighbourhood), the fingerprint degrades to order-sensitive: a
        permuted copy misses the cache instead of risking a bad remap."""
        from repro.graphs.builders import GraphBuilder
        from repro.graphs.ops import OpType
        from repro.serve.fingerprint import graph_fingerprint

        def lopsided(order):
            # in -> twin, twin, heavy; twins identical, heavy distinct.
            builder = GraphBuilder("twins")
            ids = {}
            spec = {
                "in": (OpType.INPUT, 0.0),
                "t1": (OpType.RELU, 1.0),
                "t2": (OpType.RELU, 1.0),
                "out": (OpType.MATMUL, 9.0),
            }
            for name in order:
                op, cost = spec[name]
                ids[name] = builder.add_node(
                    "twin" if name in ("t1", "t2") else name,
                    op, compute_us=cost, output_bytes=32.0,
                )
            for s, d in [("in", "t1"), ("in", "t2"), ("t1", "out"), ("t2", "out")]:
                builder.add_edge(ids[s], ids[d])
            return builder.build()

        same = lopsided(["in", "t1", "t2", "out"])
        permuted = lopsided(["out", "in", "t1", "t2"])
        # Identical insertion order still fingerprints identically...
        assert graph_fingerprint(same) == graph_fingerprint(
            lopsided(["in", "t1", "t2", "out"])
        )
        # ...but a permutation of a tie-carrying graph must not alias.
        assert graph_fingerprint(same) != graph_fingerprint(permuted)

    def test_warm_vs_cold_source_classification(self, service):
        a = service.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
        b = service.submit(PartitionRequest(graph=build_cnn(), n_chips=4))
        assert a.source == "cold" and b.source == "warm"

    def test_cached_request_is_10x_faster_and_identical(self, service):
        """Acceptance pin: a cache hit is >= 10x faster than the cold
        request and returns the bit-identical partition."""
        graph = build_cnn()
        request = PartitionRequest(graph=graph, n_chips=4, samples=16)
        cold = service.submit(request)
        assert cold.source == "cold"
        hits = [service.submit(request) for _ in range(3)]
        for hit in hits:
            assert hit.cached
            np.testing.assert_array_equal(hit.assignment, cold.assignment)
        best_hit_ms = min(h.latency_ms for h in hits)
        assert best_hit_ms * 10.0 <= cold.latency_ms, (
            f"cache hit {best_hit_ms:.3f}ms vs cold {cold.latency_ms:.3f}ms"
        )


class TestDeterminism:
    def test_result_independent_of_batch_composition(self):
        """A request's partition is a pure function of (weights, its own
        fingerprint): alone or batched with strangers, same answer."""
        mine = random_dag(5, 18)
        alone = tiny_service().submit(PartitionRequest(graph=mine, n_chips=4))
        batched_service = tiny_service()
        responses = batched_service.submit_many(
            [
                PartitionRequest(graph=random_dag(6, 14), n_chips=4),
                PartitionRequest(graph=mine, n_chips=4),
                PartitionRequest(graph=random_dag(7, 22), n_chips=4),
            ]
        )
        np.testing.assert_array_equal(responses[1].assignment, alone.assignment)
        assert responses[1].fingerprint == alone.fingerprint

    def test_result_independent_of_worker_count(self):
        """The replay batch is spawn-key seeded, so the service returns the
        same partition with an in-process executor and a forked pool."""
        from repro.parallel.pool import fork_available

        if not fork_available():  # pragma: no cover - platform guard
            pytest.skip("fork unavailable")
        graph = random_dag(9, 20)
        serial = tiny_service(n_workers=1).submit(
            PartitionRequest(graph=graph, n_chips=4)
        )
        pooled = tiny_service(n_workers=2).submit(
            PartitionRequest(graph=graph, n_chips=4)
        )
        np.testing.assert_array_equal(pooled.assignment, serial.assignment)
        assert pooled.improvement == serial.improvement

    def test_fresh_service_reproduces_results(self):
        graph = random_dag(11, 16)
        a = tiny_service().submit(PartitionRequest(graph=graph, n_chips=4))
        b = tiny_service().submit(PartitionRequest(graph=graph, n_chips=4))
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestBatchSemantics:
    def test_duplicate_requests_search_once(self, service):
        """Identical requests in one batch are deduplicated: one search,
        copies served from the fresh cache entry."""
        graph = build_mlp()
        responses = service.submit_many(
            [
                PartitionRequest(graph=graph, n_chips=4),
                PartitionRequest(graph=graph, n_chips=4),
                PartitionRequest(graph=graph, n_chips=4),
            ]
        )
        assert responses[0].source == "cold" and not responses[0].cached
        for dup in responses[1:]:
            assert dup.cached and dup.source == "cached"
            np.testing.assert_array_equal(dup.assignment, responses[0].assignment)
        metrics = service.metrics()
        # Request-level accounting: one real search, two deduplicated
        # copies.  Duplicates never probe the cache (the primary's miss is
        # already counted), so lookup counters see exactly one miss.
        assert metrics["by_source"] == {
            "cached": 2, "warm": 0, "cold": 1, "degraded": 0,
        }
        assert metrics["latency_ms"]["cold"]["count"] == 1
        assert metrics["cache"]["hits"] == 0
        assert metrics["cache"]["misses"] == 1

    def test_invalid_member_does_not_discard_siblings(self, service):
        """A *validation* failure (bad objective) is isolated exactly like
        an unsatisfiable search: the sibling still runs and is cached."""
        good = PartitionRequest(graph=build_mlp(), n_chips=4)
        bad = PartitionRequest(graph=build_cnn(), n_chips=4, objective="speed")
        with pytest.raises(ServiceError, match="objective"):
            service.submit_many([bad, good])
        retry = service.submit(good)
        assert retry.cached

    def test_duplicate_served_even_after_in_batch_eviction(self):
        """A capacity-1 cache can evict the primary's entry before its
        in-batch duplicate is served; the duplicate must still get the
        primary's result, not a hole in the response list."""
        service = tiny_service(cache_capacity=1)
        a, b = build_mlp(), build_cnn()
        responses = service.submit_many(
            [
                PartitionRequest(graph=a, n_chips=4),
                PartitionRequest(graph=a, n_chips=4),  # duplicate of [0]
                PartitionRequest(graph=b, n_chips=4),  # evicts a's entry
            ]
        )
        assert all(r is not None for r in responses)
        np.testing.assert_array_equal(responses[1].assignment,
                                      responses[0].assignment)
        assert responses[1].cached

    def test_duplicate_latency_not_charged_to_cached_class(self, service):
        """An in-batch duplicate waits on the primary's search, but that
        wait is accounted under the primary's cold/warm record — the
        'cached' percentiles stay cache-serve-only (sub-millisecond)."""
        graph = build_mlp()
        service.submit_many(
            [
                PartitionRequest(graph=graph, n_chips=4),
                PartitionRequest(graph=graph, n_chips=4),
            ]
        )
        metrics = service.metrics()
        cold_p50 = metrics["latency_ms"]["cold"]["p50_ms"]
        cached_p50 = metrics["latency_ms"]["cached"]["p50_ms"]
        assert cached_p50 < cold_p50 / 10

    def test_failed_member_does_not_discard_siblings(self, tmp_path):
        """One unsatisfiable member fails the batch with a single error,
        but every sibling's search still ran and was cached — the retry
        without the bad request is answered from cache."""
        from repro.core.partitioner import RLPartitioner

        registry = CheckpointRegistry(str(tmp_path / "reg"))
        registry.publish_partitioner(
            "prod", RLPartitioner(4, config=tiny_rl_config(), rng=0)
        )
        service = tiny_service(registry=registry)
        good_graph = build_mlp()
        good = PartitionRequest(graph=good_graph, n_chips=4)
        # The 4-chip checkpoint cannot serve an 8-chip request: the warm
        # pool rejects it at build time (a group-level failure).
        bad = PartitionRequest(graph=build_cnn(), n_chips=8, checkpoint="prod")
        with pytest.raises(ServiceError, match="trained for"):
            service.submit_many([good, bad])
        assert service.metrics()["errors"] == 1
        retry = service.submit(good)
        assert retry.cached  # the sibling's work survived the failure


class TestRequestSpace:
    def test_objectives_are_separate_entries(self, service):
        graph = build_mlp()
        thr = service.submit(
            PartitionRequest(graph=graph, n_chips=4, objective="throughput")
        )
        lat = service.submit(
            PartitionRequest(graph=graph, n_chips=4, objective="latency")
        )
        assert thr.fingerprint != lat.fingerprint
        assert lat.objective == "latency" and not lat.cached

    def test_topologies_are_separate_entries(self, service):
        graph = build_mlp()
        ring = service.submit(PartitionRequest(graph=graph, n_chips=4))
        mesh = service.submit(
            PartitionRequest(graph=graph, n_chips=4, topology=Mesh2D(2, 2))
        )
        assert ring.fingerprint != mesh.fingerprint
        assert not mesh.cached

    def test_simulator_cost_model_serves(self, service):
        response = service.submit(
            PartitionRequest(
                graph=build_mlp(), n_chips=4, cost_model="simulator", samples=4
            )
        )
        assert response.improvement > 0
        assert response.throughput > 0

    def test_checkpoint_flow(self, tmp_path):
        from repro.core.partitioner import RLPartitioner

        registry = CheckpointRegistry(str(tmp_path / "reg"))
        trained = RLPartitioner(4, config=tiny_rl_config(), rng=42)
        registry.publish_partitioner("prod", trained)
        service = tiny_service(registry=registry)
        graph = build_mlp()
        untrained = service.submit(PartitionRequest(graph=graph, n_chips=4))
        ckpt = service.submit(
            PartitionRequest(graph=graph, n_chips=4, checkpoint="prod")
        )
        assert ckpt.checkpoint == ("prod", 1)
        assert ckpt.fingerprint != untrained.fingerprint
        # Same checkpoint again: cache hit, zero further weight loads.
        again = service.submit(
            PartitionRequest(graph=graph, n_chips=4, checkpoint="prod")
        )
        assert again.cached
        assert service.pool.weight_loads == 1

    def test_new_version_invalidates_latest(self, tmp_path):
        from repro.core.partitioner import RLPartitioner

        registry = CheckpointRegistry(str(tmp_path / "reg"))
        registry.publish_partitioner(
            "prod", RLPartitioner(4, config=tiny_rl_config(), rng=1)
        )
        service = tiny_service(registry=registry)
        graph = build_mlp()
        v1 = service.submit(
            PartitionRequest(graph=graph, n_chips=4, checkpoint="prod")
        )
        registry.publish_partitioner(
            "prod", RLPartitioner(4, config=tiny_rl_config(), rng=2)
        )
        v2 = service.submit(
            PartitionRequest(graph=graph, n_chips=4, checkpoint="prod")
        )
        assert not v2.cached and v2.fingerprint != v1.fingerprint
        assert v2.checkpoint == ("prod", 2)


class TestErrors:
    def test_bad_objective(self, service):
        with pytest.raises(ServiceError, match="objective"):
            service.submit(
                PartitionRequest(graph=build_mlp(), objective="speed")
            )

    def test_bad_cost_model(self, service):
        with pytest.raises(ServiceError, match="cost_model"):
            service.submit(
                PartitionRequest(graph=build_mlp(), cost_model="magic")
            )

    def test_checkpoint_without_registry(self, service):
        with pytest.raises(ServiceError, match="registry"):
            service.submit(
                PartitionRequest(graph=build_mlp(), checkpoint="prod")
            )

    def test_topology_chip_mismatch(self, service):
        with pytest.raises(ServiceError, match="topology is for"):
            service.submit(
                PartitionRequest(
                    graph=build_mlp(), n_chips=6, topology=Mesh2D(2, 2)
                )
            )

    def test_errors_counted(self, service):
        with pytest.raises(ServiceError):
            service.submit(PartitionRequest(graph=build_mlp(), n_chips=0))
        assert service.metrics()["errors"] == 1


class TestMetrics:
    def test_counters_and_percentiles(self, service):
        graph = build_mlp()
        service.submit(PartitionRequest(graph=graph, n_chips=4))
        service.submit(PartitionRequest(graph=graph, n_chips=4))
        service.submit(PartitionRequest(graph=build_cnn(), n_chips=4))
        metrics = service.metrics()
        assert metrics["requests_total"] == 3
        assert metrics["by_source"] == {
            "cached": 1, "warm": 1, "cold": 1, "degraded": 0,
        }
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 2
        assert metrics["latency_ms"]["cold"]["count"] == 1
        assert metrics["latency_ms"]["cold"]["p50_ms"] > 0
        assert metrics["requests_per_sec"] > 0
        assert metrics["pool"] == {
            "size": 1, "capacity": 4, "builds": 1, "weight_loads": 0,
        }

    def test_metrics_render_as_report(self, service):
        from repro.analysis import format_service_metrics

        service.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
        text = format_service_metrics(service.metrics())
        assert "serving metrics" in text
        assert "cold" in text and "hit rate" in text

    def test_metrics_are_json_safe(self, service):
        import json

        service.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
        json.dumps(service.metrics())
