"""Precision as a deployment invariant: checkpoints and fingerprints.

Two serving-side contracts for the backend seam:

* **Checkpoints are precision-portable.** Weights carry no precision tag;
  loading restores into the *active* backend's dtype, bumps versions, and
  invalidates the encoder memo — a float32 deployment can serve float64
  training checkpoints and vice versa.
* **Precision is not identity.** Like the service seed, precision is a
  per-deployment invariant (every replica must agree), so it is deliberately
  absent from request/graph fingerprints: flipping precision must not fork
  the result cache or the registry namespace.
"""

import numpy as np
import pytest

from repro.graphs.zoo import build_mlp
from repro.nn.serialization import load_state, save_state
from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy
from repro.serve import PartitionRequest, PartitionService, ServiceConfig
from tests.serve.conftest import tiny_rl_config, tiny_service


def _policy(precision, rng=0):
    return PartitionPolicy(
        4, hidden=16, n_sage_layers=1, rng=rng, backend=precision
    )


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize(
        "saved,active,dtype",
        [
            ("float32", "float64", np.float64),
            ("float64", "float32", np.float32),
        ],
        ids=["f32-into-f64", "f64-into-f32"],
    )
    def test_cross_precision_load_restores_active_dtype(
        self, saved, active, dtype, tmp_path
    ):
        donor = _policy(saved, rng=1)
        path = str(tmp_path / "policy.npz")
        save_state(donor, path)

        target = _policy(active, rng=2)
        feats = featurize(build_mlp())
        h_before = target.encode(feats)
        version_before = target.weights_version()

        load_state(target, path)

        state = target.state_dict()
        donor_state = donor.state_dict()
        for key, value in state.items():
            assert value.dtype == np.dtype(dtype)
            np.testing.assert_allclose(
                value.astype(np.float64),
                donor_state[key].astype(np.float64),
                rtol=1e-6,
                atol=1e-7,
            )
        # Loading announces the weight change: versions bump, so the
        # encoder memo keyed on weights_version is invalidated.
        assert target.weights_version() != version_before
        h_after = target.encode(feats)
        assert h_after is not h_before
        assert h_after.data.dtype == np.dtype(dtype)

    def test_round_trip_through_float32_is_lossless_for_float32(self, tmp_path):
        """f32 -> disk -> f32 is exact; the payload is stored as written."""
        donor = _policy("float32", rng=3)
        path = str(tmp_path / "p.npz")
        save_state(donor, path)
        target = _policy("float32", rng=4)
        load_state(target, path)
        for key, value in target.state_dict().items():
            np.testing.assert_array_equal(value, donor.state_dict()[key])


class TestServingInvariants:
    def test_service_config_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            ServiceConfig(precision="float16")

    def test_precision_threads_to_the_warm_pool(self):
        service = PartitionService(
            ServiceConfig(default_samples=6, cache_capacity=8, seed=0,
                          precision="float32")
        )
        assert service.pool.config.precision == "float32"

    def test_fingerprints_identical_across_precisions(self):
        """Same request, two deployments at different precisions: identical
        fingerprint — precision is not part of request identity."""
        s64 = tiny_service()
        s32 = PartitionService(
            ServiceConfig(default_samples=6, cache_capacity=32, seed=0,
                          precision="float32"),
            partitioner_config=tiny_rl_config(precision="float32"),
        )
        graph = build_mlp()
        request = PartitionRequest(graph=graph, n_chips=4)
        r64 = s64.submit(request)
        r32 = s32.submit(PartitionRequest(graph=graph, n_chips=4))
        assert r64.fingerprint == r32.fingerprint
        assert not r32.cached and r32.source == "cold"
        assert r32.assignment is not None
        assert r32.assignment.min() >= 0 and r32.assignment.max() < 4

    def test_float32_service_serves_from_cache_bit_identical(self):
        service = PartitionService(
            ServiceConfig(default_samples=6, cache_capacity=32, seed=0,
                          precision="float32"),
            partitioner_config=tiny_rl_config(precision="float32"),
        )
        graph = build_mlp()
        first = service.submit(PartitionRequest(graph=graph, n_chips=4))
        second = service.submit(PartitionRequest(graph=graph, n_chips=4))
        assert second.cached
        np.testing.assert_array_equal(second.assignment, first.assignment)
        assert second.improvement == first.improvement


def _int8_service(registry=None, **overrides):
    kwargs = dict(default_samples=6, cache_capacity=32, seed=0,
                  precision="int8")
    kwargs.update(overrides)
    return PartitionService(
        ServiceConfig(**kwargs),
        registry=registry,
        partitioner_config=tiny_rl_config(precision="int8"),
    )


class TestInt8Serving:
    """The quantized inference-only deployment: explicit opt-in, same
    request identity, quantization error surfaced in /metrics."""

    def test_service_config_accepts_int8(self):
        assert ServiceConfig(precision="int8").precision == "int8"

    def test_precision_threads_to_the_warm_pool(self):
        assert _int8_service().pool.config.precision == "int8"

    def test_serves_valid_partitions(self):
        service = _int8_service()
        response = service.submit(PartitionRequest(graph=build_mlp(),
                                                   n_chips=4))
        assert not response.cached and response.source == "cold"
        assert response.assignment.min() >= 0
        assert response.assignment.max() < 4

    def test_fingerprint_matches_float_deployments(self):
        """int8 is a deployment invariant like float32: absent from
        request identity, so caches/registries never fork on it."""
        graph = build_mlp()
        r64 = tiny_service().submit(PartitionRequest(graph=graph, n_chips=4))
        r8 = _int8_service().submit(PartitionRequest(graph=graph, n_chips=4))
        assert r8.fingerprint == r64.fingerprint

    def test_cache_replay_bit_identical(self):
        service = _int8_service()
        graph = build_mlp()
        first = service.submit(PartitionRequest(graph=graph, n_chips=4))
        second = service.submit(PartitionRequest(graph=graph, n_chips=4))
        assert second.cached
        np.testing.assert_array_equal(second.assignment, first.assignment)

    def test_quantization_stats_in_metrics(self):
        """Quantization error appears in /metrics per pool entry; float
        deployments never grow the key."""
        service = _int8_service()
        service.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
        metrics = service.metrics()
        assert "int8_quantization" in metrics
        (label, stats), = metrics["int8_quantization"].items()
        assert label == "untrained/chips=4"
        assert stats["n_layers"] >= 1
        assert stats["max_abs_err"] > 0.0

        float_metrics = tiny_service().metrics()
        assert "int8_quantization" not in float_metrics

    def test_checkpoint_install_refreshes_stats(self, tmp_path):
        """A checkpoint install re-quantizes: the served stats describe
        the installed weights, keyed by checkpoint@version."""
        from repro.core.partitioner import RLPartitioner
        from repro.serve import CheckpointRegistry

        registry = CheckpointRegistry(str(tmp_path / "reg"))
        registry.publish_partitioner(
            "prod", RLPartitioner(4, config=tiny_rl_config(), rng=5)
        )
        service = _int8_service(registry=registry)
        service.submit(PartitionRequest(graph=build_mlp(), n_chips=4,
                                        checkpoint="prod"))
        quant = service.metrics()["int8_quantization"]
        assert any(key.startswith("prod@") for key in quant)
