"""HTTP endpoint: JSON roundtrips, cache provenance, metrics, error codes."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.graphs.serialization import graph_to_dict
from repro.graphs.zoo import build_cnn, build_mlp
from repro.serve import (
    PartitionServer,
    ServiceError,
    fetch_metrics,
    request_partition,
)
from tests.serve.conftest import tiny_service

_RESOLVER = {"mlp": build_mlp, "cnn": build_cnn}


@pytest.fixture
def server():
    with PartitionServer(
        tiny_service(),
        port=0,
        graph_resolver=lambda name: _RESOLVER[name](),
    ).start() as srv:
        yield srv


class TestPartitionEndpoint:
    def test_cold_then_cached(self, server):
        first = request_partition({"graph": "mlp", "chips": 4}, port=server.port)
        assert first["cached"] is False and first["source"] == "cold"
        assert len(first["assignment"]) == build_mlp().n_nodes
        assert first["improvement"] > 0
        second = request_partition({"graph": "mlp", "chips": 4}, port=server.port)
        assert second["cached"] is True and second["source"] == "cached"
        assert second["assignment"] == first["assignment"]
        assert second["fingerprint"] == first["fingerprint"]

    def test_inline_graph_equals_zoo_name(self, server):
        """The wire format preserves content fingerprints: an inlined copy
        of the zoo graph hits the name-resolved entry."""
        request_partition({"graph": "mlp", "chips": 4}, port=server.port)
        inline = request_partition(
            {"graph": graph_to_dict(build_mlp()), "chips": 4}, port=server.port
        )
        assert inline["cached"] is True

    def test_full_request_surface(self, server):
        reply = request_partition(
            {
                "graph": "mlp",
                "chips": 4,
                "topology": "mesh",
                "mesh_dims": "2x2",
                "objective": "latency",
                "samples": 4,
            },
            port=server.port,
        )
        assert reply["objective"] == "latency"
        assert max(reply["assignment"]) <= 3

    def test_assignment_is_valid_partition(self, server):
        reply = request_partition({"graph": "cnn", "chips": 4}, port=server.port)
        from repro.solver.constraints import validate_partition

        report = validate_partition(
            build_cnn(), np.asarray(reply["assignment"]), 4
        )
        assert report.ok


class TestMetricsEndpoint:
    def test_counters_over_http(self, server):
        request_partition({"graph": "mlp", "chips": 4}, port=server.port)
        request_partition({"graph": "mlp", "chips": 4}, port=server.port)
        metrics = fetch_metrics(port=server.port)
        assert metrics["requests_total"] == 2
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1
        assert metrics["latency_ms"]["cached"]["count"] == 1

    def test_healthz(self, server):
        """Readiness probe: load, registry reachability, degraded counts."""
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/healthz", timeout=30
        ) as resp:
            payload = json.loads(resp.read())
        assert payload["ok"] is True
        assert payload["saturated"] is False
        assert payload["in_flight"] == 0
        assert payload["max_in_flight"] == 0
        # No registry configured is a legitimate deployment (untrained
        # policy), not an unready one.
        assert payload["registry_configured"] is False
        assert payload["registry_ok"] is True
        assert payload["degraded_recent"] == 0
        assert payload["shard_id"] is None

    def test_healthz_503_when_saturated(self):
        """A saturated shard reports unready so routers stop sending work."""
        service = tiny_service(max_in_flight=2)
        service._in_flight = 2  # pin the gauge at the admission bound
        try:
            with PartitionServer(service, port=0).start() as srv:
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{srv.port}/healthz", timeout=30
                    )
                assert err.value.code == 503
                payload = json.loads(err.value.read())
                assert payload["ok"] is False
                assert payload["saturated"] is True
        finally:
            service._in_flight = 0

    def test_metrics_echo_shard_id_and_armed_fault_plan(self):
        """A routed shard's identity and its armed chaos schedule are both
        observable from /metrics (the `--shard-id`/`--fault-plan` flags)."""
        from repro.reliability import FaultPlan

        plan = FaultPlan.parse("registry:io_error:at=load:times=2", seed=5)
        service = tiny_service(shard_id="s7", fault_plan=plan)
        with PartitionServer(service, port=0).start() as srv:
            metrics = fetch_metrics(port=srv.port)
        assert metrics["shard"] == {"id": "s7"}
        assert metrics["reliability"]["fault_plan"] == [
            {
                "site": "registry", "kind": "io_error", "at": ["load"],
                "delay_s": 0.0, "times": 2, "remaining": 2,
            }
        ]

    def test_healthz_503_when_registry_root_lost(self, tmp_path):
        """A configured registry whose root vanished means the shard can no
        longer resolve checkpoints: alive, but not ready."""
        root = tmp_path / "registry"
        root.mkdir()
        service = tiny_service(registry_path=str(root))
        with PartitionServer(service, port=0).start() as srv:
            root.rmdir()
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{srv.port}/healthz", timeout=30
                )
            assert err.value.code == 503
            payload = json.loads(err.value.read())
            assert payload["registry_configured"] is True
            assert payload["registry_ok"] is False


class TestErrorHandling:
    def test_unknown_graph_is_422(self, server):
        with pytest.raises(ServiceError, match="422.*unknown graph"):
            request_partition({"graph": "ghost"}, port=server.port)

    def test_missing_graph_is_422(self, server):
        with pytest.raises(ServiceError, match="422"):
            request_partition({"chips": 4}, port=server.port)

    def test_bad_topology_is_422(self, server):
        with pytest.raises(ServiceError, match="422"):
            request_partition(
                {"graph": "mlp", "topology": "moebius"}, port=server.port
            )

    def test_malformed_mesh_dims_is_422_not_dropped_connection(self, server):
        """Junk-shaped mesh_dims (dict, list of junk, number) must come
        back as a clean 422 — never crash the handler thread."""
        for junk in ({"a": 1}, [None], 7, "2y3"):
            with pytest.raises(ServiceError, match="422"):
                request_partition(
                    {"graph": "mlp", "topology": "mesh", "mesh_dims": junk},
                    port=server.port,
                )

    def test_unknown_checkpoint_error_is_clean_text(self, server):
        """RegistryError messages reach the client without KeyError's
        repr-quoting noise."""
        with pytest.raises(ServiceError) as exc_info:
            request_partition(
                {"graph": "mlp", "checkpoint": "ghost"}, port=server.port
            )
        assert "''" not in str(exc_info.value)
        assert "registry" in str(exc_info.value)

    def test_bad_chips_is_422(self, server):
        with pytest.raises(ServiceError, match="422"):
            request_partition(
                {"graph": "mlp", "chips": "lots"}, port=server.port
            )

    def test_mesh_dims_without_mesh_topology_is_422(self, server):
        """Same contract as the CLI: dims on a non-mesh topology are an
        error, not silently dropped."""
        with pytest.raises(ServiceError, match="422.*mesh"):
            request_partition(
                {"graph": "mlp", "chips": 6, "mesh_dims": "2x3"},
                port=server.port,
            )

    def test_negative_content_length_is_400(self, server):
        """A hostile Content-Length must not wedge the handler thread."""
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.putrequest("POST", "/partition")
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_oversized_content_length_is_413(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.putrequest("POST", "/partition")
            conn.putheader("Content-Length", str(2**31))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()

    def test_unknown_path_is_404(self, server):
        req = urllib.request.Request(f"http://127.0.0.1:{server.port}/nope")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 404

    def test_malformed_json_is_400(self, server):
        req = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/partition",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 400

    def test_shutdown_is_idempotent(self):
        server = PartitionServer(tiny_service(), port=0).start()
        server.shutdown()
        server.shutdown()
