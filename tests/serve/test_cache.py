"""Partition-cache semantics: deterministic LRU, bit-identical hits,
platform isolation."""

import numpy as np
import pytest

from repro.hardware.topology import Mesh2D
from repro.serve.cache import CachedPartition, PartitionCache
from repro.serve.fingerprint import PlatformDescriptor, request_fingerprint
from tests.conftest import random_dag


def _entry(key: str, assignment) -> CachedPartition:
    return CachedPartition(
        fingerprint=key,
        assignment=np.asarray(assignment, dtype=np.int64),
        improvement=1.5,
    )


class TestLRU:
    def test_eviction_order_is_deterministic_lru(self):
        """Satellite: least-recently-used goes first, refreshed entries
        survive — same sequence, same evictions, every run."""
        cache = PartitionCache(capacity=3)
        for key in ("a", "b", "c"):
            assert cache.put(key, _entry(key, [0, 1])) is None
        assert cache.keys() == ["a", "b", "c"]
        assert cache.get("a") is not None  # refresh a: b is now LRU
        assert cache.put("d", _entry("d", [0, 1])) == "b"
        assert cache.keys() == ["c", "a", "d"]
        assert cache.put("e", _entry("e", [0, 1])) == "c"
        assert cache.put("f", _entry("f", [0, 1])) == "a"
        assert cache.keys() == ["d", "e", "f"]
        assert cache.evictions == 3

    def test_input_order_is_the_only_tiebreak(self):
        """Two caches fed the same sequence evolve identically."""
        sequence = ["x", "y", "z", "x", "w", "v", "y"]
        caches = [PartitionCache(capacity=2) for _ in range(2)]
        logs = []
        for cache in caches:
            log = []
            for key in sequence:
                if cache.get(key) is None:
                    log.append(("miss", key, cache.put(key, _entry(key, [0]))))
                else:
                    log.append(("hit", key, None))
            logs.append((log, cache.keys()))
        assert logs[0] == logs[1]

    def test_reput_refreshes_entry_and_recency(self):
        cache = PartitionCache(capacity=2)
        cache.put("a", _entry("a", [0, 0]))
        cache.put("b", _entry("b", [0, 1]))
        cache.put("a", _entry("a", [1, 1]))  # refresh: b becomes LRU
        assert cache.put("c", _entry("c", [0])) == "b"
        np.testing.assert_array_equal(cache.get("a").assignment, [1, 1])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PartitionCache(capacity=0)


class TestHitIdentity:
    def test_hit_is_bit_identical_and_frozen(self):
        """Satellite: a hit returns the originally stored partition,
        bit for bit, and the stored array cannot be mutated."""
        cache = PartitionCache(capacity=4)
        original = np.array([0, 0, 1, 2, 3, 3], dtype=np.int64)
        cache.put("k", _entry("k", original))
        hit = cache.get("k")
        np.testing.assert_array_equal(hit.assignment, original)
        assert hit.assignment.dtype == np.int64
        assert not hit.assignment.flags.writeable
        # The source array is decoupled: mutating it cannot corrupt the cache.
        original[0] = 99
        np.testing.assert_array_equal(
            cache.get("k").assignment, [0, 0, 1, 2, 3, 3]
        )
        # Repeat hits hand out the same frozen object (no copies needed).
        assert cache.get("k").assignment is hit.assignment

    def test_counters(self):
        cache = PartitionCache(capacity=2)
        assert cache.get("nope") is None
        cache.put("k", _entry("k", [0]))
        cache.get("k")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert "k" in cache and "nope" not in cache


class TestPlatformIsolation:
    def test_mismatched_platforms_never_collide(self):
        """Satellite: the platform descriptor is part of the key, so the
        same graph cached for two platforms yields two distinct entries."""
        graph = random_dag(0, 12)
        key_ring = request_fingerprint(graph, PlatformDescriptor.of(4))
        key_mesh = request_fingerprint(
            graph, PlatformDescriptor.of(4, Mesh2D(2, 2))
        )
        assert key_ring != key_mesh
        cache = PartitionCache(capacity=4)
        cache.put(key_ring, _entry(key_ring, [0, 1, 2, 3]))
        cache.put(key_mesh, _entry(key_mesh, [3, 2, 1, 0]))
        np.testing.assert_array_equal(
            cache.get(key_ring).assignment, [0, 1, 2, 3]
        )
        np.testing.assert_array_equal(
            cache.get(key_mesh).assignment, [3, 2, 1, 0]
        )

    def test_chip_count_is_part_of_the_platform(self):
        graph = random_dag(1, 12)
        keys = {
            request_fingerprint(graph, PlatformDescriptor.of(c))
            for c in (2, 3, 4, 8)
        }
        assert len(keys) == 4
