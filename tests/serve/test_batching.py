"""Admission batching + per-source rate limits (ROADMAP "Admission
batching invariants").

Contracts:

* **Coalescing is a pure throughput win.** Concurrent cache misses that
  land inside ``batch_window_ms`` of each other flush as one replay
  batch, and every member's partition is bit-identical to the answer a
  sequential submission would have produced — results are seeded by
  fingerprint, never by batch composition.
* **Failure isolation survives coalescing.** One doomed member raises in
  *its* caller only; coalesced siblings still get their partitions.
* **Rate limiting is per-source backpressure, not failure.** An
  over-limit source gets ``ServiceOverloadError`` with a concrete
  ``retry_after`` (HTTP 429 + ``Retry-After``), counted under
  ``rate_limited`` — never ``throttled`` (the in-flight gate) and never
  ``errors``.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.graphs.zoo import build_cnn, build_mlp
from repro.reliability import Fault, FaultPlan
from repro.serve import (
    CheckpointRegistry,
    PartitionRequest,
    PartitionServer,
    ServiceError,
    ServiceOverloadError,
)
from tests.conftest import random_dag
from tests.serve.conftest import tiny_rl_config, tiny_service


def _concurrent_submit(service, requests, sources=None):
    """Submit all requests from separate threads released by one barrier.

    Returns a list of responses or captured exceptions, in request order.
    """
    barrier = threading.Barrier(len(requests))
    results = [None] * len(requests)

    def run(i):
        barrier.wait()
        try:
            source = sources[i] if sources else None
            results[i] = service.submit(requests[i], source=source)
        except BaseException as exc:  # noqa: BLE001 - test captures all
            results[i] = exc

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(requests))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


class TestCoalescing:
    def test_cross_connection_misses_bit_identical_to_sequential(self):
        """Four concurrent cold misses coalesce into one flush, and each
        caller's partition matches a sequential run exactly."""
        graphs = [random_dag(seed, 14 + seed) for seed in range(4)]
        requests = [PartitionRequest(graph=g, n_chips=4) for g in graphs]

        sequential = [
            tiny_service().submit(PartitionRequest(graph=g, n_chips=4))
            for g in graphs
        ]
        service = tiny_service(batch_window_ms=500.0, batch_max_size=4)
        coalesced = _concurrent_submit(service, requests)

        for got, want in zip(coalesced, sequential):
            assert not isinstance(got, BaseException)
            np.testing.assert_array_equal(got.assignment, want.assignment)
            assert got.fingerprint == want.fingerprint
            assert got.improvement == want.improvement

        batching = service.metrics()["batching"]
        assert batching["batches_flushed"] == 1
        assert batching["coalesced_requests"] == 4
        assert batching["batch_size_histogram"] == {"4": 1}

    def test_full_batch_flushes_before_window_expires(self):
        """Hitting ``batch_max_size`` flushes immediately — the window is
        an upper bound on waiting, not a fixed delay."""
        import time

        service = tiny_service(batch_window_ms=30_000.0, batch_max_size=2)
        requests = [
            PartitionRequest(graph=random_dag(s, 12), n_chips=4)
            for s in (10, 11)
        ]
        t0 = time.monotonic()
        results = _concurrent_submit(service, requests)
        elapsed = time.monotonic() - t0
        assert all(not isinstance(r, BaseException) for r in results)
        assert elapsed < 25.0  # nowhere near the 30 s window
        assert service.metrics()["batching"]["batch_size_histogram"] == {"2": 1}

    def test_lone_request_flushes_after_window(self):
        """A solo miss just waits out the window; a batch of one is not
        'coalesced' (the counter measures saved admissions only)."""
        service = tiny_service(batch_window_ms=10.0)
        response = service.submit(
            PartitionRequest(graph=build_mlp(), n_chips=4)
        )
        assert response.source == "cold"
        batching = service.metrics()["batching"]
        assert batching["batches_flushed"] == 1
        assert batching["coalesced_requests"] == 0
        assert batching["batch_size_histogram"] == {"1": 1}

    def test_window_zero_never_batches(self):
        service = tiny_service()  # batch_window_ms defaults to 0.0
        service.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
        batching = service.metrics()["batching"]
        assert batching["window_ms"] == 0.0
        assert batching["batches_flushed"] == 0

    def test_coalesced_duplicates_share_one_search(self):
        """Identical requests arriving on different connections dedupe
        exactly like an explicit ``submit_many`` batch: one cold search,
        the twin served from the fresh entry."""
        graph = build_mlp()
        service = tiny_service(batch_window_ms=500.0, batch_max_size=2)
        results = _concurrent_submit(
            service,
            [PartitionRequest(graph=graph, n_chips=4) for _ in range(2)],
        )
        assert all(not isinstance(r, BaseException) for r in results)
        sources = sorted(r.source for r in results)
        assert sources == ["cached", "cold"]
        a, b = results
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert service.metrics()["cache"]["misses"] == 1

    def test_cached_hits_still_coalesce_safely(self):
        """Warm traffic through the coalesced path returns cache hits —
        batching never changes what a request observes."""
        graph = build_mlp()
        service = tiny_service(batch_window_ms=20.0, batch_max_size=4)
        cold = service.submit(PartitionRequest(graph=graph, n_chips=4))
        hit = service.submit(PartitionRequest(graph=graph, n_chips=4))
        assert hit.cached
        np.testing.assert_array_equal(hit.assignment, cold.assignment)

    def test_wait_percentiles_recorded(self):
        service = tiny_service(batch_window_ms=500.0, batch_max_size=2)
        _concurrent_submit(
            service,
            [
                PartitionRequest(graph=random_dag(s, 12), n_chips=4)
                for s in (20, 21)
            ],
        )
        waits = service.metrics()["batching"]["batch_wait_ms"]
        assert waits["count"] == 2
        assert 0.0 <= waits["p50_ms"] <= waits["p95_ms"]


class TestMemberIsolation:
    def _registry(self, tmp_path, fault_plan=None):
        path = str(tmp_path / "reg")
        clean = CheckpointRegistry(path)
        seed = tiny_service(registry=clean)
        partitioner, _ = seed.pool.get(4)
        clean.publish_partitioner("pol", partitioner)
        return CheckpointRegistry(path, fault_plan=fault_plan)

    def test_failed_member_raises_only_in_its_caller(self, tmp_path):
        """A member the warm pool rejects (4-chip checkpoint asked for 8
        chips) fails its own caller; coalesced siblings are served."""
        registry = self._registry(tmp_path)
        service = tiny_service(
            registry=registry, batch_window_ms=500.0, batch_max_size=3
        )
        good_a = PartitionRequest(graph=build_mlp(), n_chips=4)
        good_b = PartitionRequest(graph=build_cnn(), n_chips=4)
        bad = PartitionRequest(
            graph=random_dag(3, 12), n_chips=8, checkpoint="pol"
        )
        results = _concurrent_submit(service, [good_a, bad, good_b])
        assert isinstance(results[1], ServiceError)
        assert "trained for" in str(results[1])
        for r in (results[0], results[2]):
            assert not isinstance(r, BaseException)
            assert r.source == "cold"
        metrics = service.metrics()
        assert metrics["errors"] == 1
        assert metrics["batching"]["coalesced_requests"] == 3

    def test_degraded_member_is_served_not_raised(self, tmp_path):
        """A registry I/O fault degrades only the member that needed the
        checkpoint; its coalesced sibling serves at full quality."""
        plan = FaultPlan(
            [Fault(site="registry", kind="io_error", at=("load",), times=-1)]
        )
        registry = self._registry(tmp_path, fault_plan=plan)
        service = tiny_service(
            registry=registry,
            fault_plan=plan,
            batch_window_ms=500.0,
            batch_max_size=2,
        )
        needs_ckpt = PartitionRequest(
            graph=random_dag(4, 12), n_chips=4, checkpoint="pol"
        )
        plain = PartitionRequest(graph=build_mlp(), n_chips=4)
        results = _concurrent_submit(service, [needs_ckpt, plain])
        assert not isinstance(results[0], BaseException)
        assert results[0].degraded and results[0].source == "degraded"
        assert not isinstance(results[1], BaseException)
        assert not results[1].degraded and results[1].source == "cold"
        metrics = service.metrics()
        assert metrics["by_source"]["degraded"] == 1
        assert metrics["reliability"]["degraded_serves"] == 1


class TestRateLimiting:
    def test_over_limit_is_429_semantics_not_error(self):
        service = tiny_service(rate_limit_rps=0.1, rate_limit_burst=1)
        graph = build_mlp()
        first = service.submit(
            PartitionRequest(graph=graph, n_chips=4), source="client-a"
        )
        assert first.source == "cold"
        with pytest.raises(ServiceOverloadError, match="rate limit") as exc:
            service.submit(
                PartitionRequest(graph=build_cnn(), n_chips=4),
                source="client-a",
            )
        assert exc.value.retry_after > 0.0
        metrics = service.metrics()
        assert metrics["reliability"]["rate_limited"] == 1
        assert metrics["throttled"] == 0  # separate from the in-flight gate
        assert metrics["errors"] == 0  # backpressure, not failure

    def test_sources_are_independent(self):
        service = tiny_service(rate_limit_rps=0.1, rate_limit_burst=1)
        service.submit(
            PartitionRequest(graph=build_mlp(), n_chips=4), source="a"
        )
        with pytest.raises(ServiceOverloadError):
            service.submit(
                PartitionRequest(graph=build_cnn(), n_chips=4), source="a"
            )
        # b has its own bucket: admitted immediately.
        response = service.submit(
            PartitionRequest(graph=build_cnn(), n_chips=4), source="b"
        )
        assert not response.cached

    def test_anonymous_sources_share_one_bucket(self):
        service = tiny_service(rate_limit_rps=0.1, rate_limit_burst=1)
        service.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
        with pytest.raises(ServiceOverloadError):
            service.submit(PartitionRequest(graph=build_cnn(), n_chips=4))

    def test_disabled_by_default(self):
        service = tiny_service()
        for seed in range(3):
            service.submit(
                PartitionRequest(graph=random_dag(seed, 12), n_chips=4),
                source="same",
            )
        assert service.metrics()["reliability"]["rate_limited"] == 0

    def test_http_429_with_retry_after_header(self):
        """Over the wire: second request from the same ``X-Repro-Source``
        gets 429 + Retry-After (raw urllib — the client helper would
        transparently back off and retry)."""
        from repro.graphs.serialization import graph_to_dict

        service = tiny_service(rate_limit_rps=0.05, rate_limit_burst=1)
        with PartitionServer(service, port=0).start() as srv:
            url = f"http://127.0.0.1:{srv.port}/partition"

            def post():
                body = json.dumps(
                    {"graph": graph_to_dict(build_mlp()), "chips": 4}
                ).encode()
                req = urllib.request.Request(
                    url,
                    data=body,
                    headers={
                        "Content-Type": "application/json",
                        "X-Repro-Source": "tenant-1",
                    },
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return json.loads(resp.read())

            assert post()["source"] == "cold"
            with pytest.raises(urllib.error.HTTPError) as err:
                post()
            assert err.value.code == 429
            assert float(err.value.headers["Retry-After"]) > 0.0
            payload = json.loads(err.value.read())
            assert payload["retry_after_s"] > 0.0
            assert "rate limit" in payload["error"]


class TestConfigSurface:
    def test_metrics_echo_batching_config(self):
        service = tiny_service(batch_window_ms=5.0, batch_max_size=3)
        batching = service.metrics()["batching"]
        assert batching["window_ms"] == 5.0
        assert batching["max_size"] == 3

    def test_invalid_config_rejected(self):
        from repro.serve import ServiceConfig

        with pytest.raises(ValueError):
            ServiceConfig(batch_window_ms=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(batch_window_ms=1.0, batch_max_size=0)
        with pytest.raises(ValueError):
            ServiceConfig(rate_limit_rps=-0.5)
        with pytest.raises(ValueError):
            ServiceConfig(rate_limit_burst=-1)

    def test_router_forwards_batching_flags(self):
        """spawn_shard only appends the flags when a window is set, so
        seed-era shard commands stay byte-identical."""
        from unittest import mock

        from repro.serve import router as router_mod

        def spawn_argv(**kwargs):
            with mock.patch.object(
                router_mod.subprocess, "Popen"
            ) as popen, mock.patch.object(
                router_mod,
                "_read_line",
                return_value="serving on 127.0.0.1:8100",
            ):
                popen.return_value = mock.Mock(pid=1234)
                router_mod.spawn_shard("s0", **kwargs)
                return popen.call_args[0][0]

        argv = spawn_argv(batch_window_ms=5.0, batch_max_size=4)
        assert argv[argv.index("--batch-window-ms") + 1] == "5.0"
        assert argv[argv.index("--batch-max-size") + 1] == "4"
        assert "--batch-window-ms" not in spawn_argv()
