"""Serving resilience: deadlines, backpressure, degraded fallback, retries."""

import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.reliability import Fault, FaultPlan
from repro.serve import (
    CheckpointRegistry,
    PartitionRequest,
    PartitionServer,
    ServiceError,
    ServiceOverloadError,
    fetch_metrics,
    request_partition,
)
from repro.serve.server import DEFAULT_RETRIES, DEFAULT_TIMEOUT_S
from tests.conftest import random_dag
from tests.serve.conftest import tiny_service


@pytest.fixture
def graph():
    return random_dag(0, 12)


def _payload(graph):
    from repro.graphs.serialization import graph_to_dict

    return {"graph": graph_to_dict(graph), "chips": 4}


def _published_registry(tmp_path, fault_plan=None):
    """A registry holding one checkpoint, optionally fault-injected."""
    path = str(tmp_path / "reg")
    clean = CheckpointRegistry(path)
    seed_service = tiny_service(registry=clean)
    partitioner, _ = seed_service.pool.get(4)
    clean.publish_partitioner("pol", partitioner)
    return CheckpointRegistry(path, fault_plan=fault_plan)


class TestAdmissionGate:
    def test_overload_rejected_with_retry_after(self, graph):
        service = tiny_service(max_in_flight=1, retry_after_s=0.7)
        service._admit()  # occupy the only slot
        try:
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(PartitionRequest(graph=graph, n_chips=4))
            assert excinfo.value.retry_after == 0.7
        finally:
            service._release()
        assert service.metrics()["throttled"] == 1
        # overload is backpressure, not a failure
        assert service.metrics()["errors"] == 0

    def test_gate_reopens_after_release(self, graph):
        service = tiny_service(max_in_flight=1)
        response = service.submit(PartitionRequest(graph=graph, n_chips=4))
        assert not response.degraded
        assert service.in_flight == 0

    def test_unbounded_by_default(self, graph):
        service = tiny_service()
        for _ in range(3):
            service._admit()
        service.submit(PartitionRequest(graph=graph, n_chips=4))
        for _ in range(3):
            service._release()


class TestDegradedFallback:
    def test_registry_io_fault_serves_degraded(self, graph, tmp_path):
        plan = FaultPlan(
            [Fault(site="registry", kind="io_error", at=("load",), times=-1)]
        )
        registry = _published_registry(tmp_path, fault_plan=plan)
        service = tiny_service(registry=registry, fault_plan=plan)
        request = PartitionRequest(graph=graph, n_chips=4, checkpoint="pol")
        response = service.submit(request)
        assert response.degraded
        assert response.source == "degraded"
        assert response.samples == 0
        # the fallback *is* the greedy baseline: improvement ratio is 1.0
        assert response.improvement == pytest.approx(1.0)
        metrics = service.metrics()
        assert metrics["by_source"]["degraded"] == 1
        assert metrics["reliability"]["degraded_serves"] == 1
        assert metrics["reliability"]["faults_fired"] >= 1

    def test_corrupt_checkpoint_serves_degraded(self, graph, tmp_path):
        registry = _published_registry(tmp_path)
        import os

        npz = os.path.join(registry.root, "pol", "v0001.npz")
        with open(npz, "r+b") as fh:
            fh.seek(99)
            byte = fh.read(1)
            fh.seek(99)
            fh.write(bytes([byte[0] ^ 0xFF]))
        service = tiny_service(registry=registry)
        response = service.submit(
            PartitionRequest(graph=graph, n_chips=4, checkpoint="pol")
        )
        assert response.degraded
        assert "corrupt" in response.degraded_reason

    def test_unknown_checkpoint_still_errors(self, graph, tmp_path):
        # Client errors must NOT be papered over with a degraded answer.
        registry = _published_registry(tmp_path)
        service = tiny_service(registry=registry)
        with pytest.raises(ServiceError, match="ghost"):
            service.submit(
                PartitionRequest(graph=graph, n_chips=4, checkpoint="ghost")
            )

    def test_exhausted_deadline_serves_degraded(self, graph):
        service = tiny_service(request_deadline=1e-9)
        response = service.submit(PartitionRequest(graph=graph, n_chips=4))
        assert response.degraded
        assert "deadline" in response.degraded_reason
        assert response.assignment.shape == (graph.n_nodes,)
        assert (response.assignment >= 0).all()
        assert (response.assignment < 4).all()

    def test_degraded_result_is_never_cached(self, graph):
        service = tiny_service(request_deadline=1e-9)
        request = PartitionRequest(graph=graph, n_chips=4)
        first = service.submit(request)
        assert first.degraded
        assert len(service.cache) == 0
        # same request once the pressure clears: a real (cached-able) search
        healthy = tiny_service()
        healthy.cache = service.cache
        second = healthy.submit(request)
        assert not second.degraded
        assert second.source == "cold"
        assert len(healthy.cache) == 1

    def test_degraded_duplicates_in_one_batch(self, graph):
        service = tiny_service(request_deadline=1e-9)
        request = PartitionRequest(graph=graph, n_chips=4)
        responses = service.submit_many([request, request])
        assert all(r is not None and r.degraded for r in responses)
        np.testing.assert_array_equal(
            responses[0].assignment, responses[1].assignment
        )

    def test_cache_hit_beats_deadline_check(self, graph):
        # A hit is served before the miss path: warm entries stay availabl
        # even when the deadline would degrade a fresh search.
        service = tiny_service()
        request = PartitionRequest(graph=graph, n_chips=4)
        real = service.submit(request)
        slow = tiny_service(request_deadline=1e-9)
        slow.cache = service.cache
        hit = slow.submit(request)
        assert hit.cached and not hit.degraded
        np.testing.assert_array_equal(hit.assignment, real.assignment)


class TestHTTPBackpressure:
    def test_429_with_retry_after_header(self, graph):
        import json

        service = tiny_service(max_in_flight=1, retry_after_s=0.3)
        with PartitionServer(service, port=0) as server:
            server.start()
            service._admit()
            try:
                body = json.dumps(_payload(graph)).encode()
                request = urllib.request.Request(
                    f"http://127.0.0.1:{server.port}/partition",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10.0)
                assert excinfo.value.code == 429
                assert float(excinfo.value.headers["Retry-After"]) == 0.3
            finally:
                service._release()

    def test_client_retries_through_429(self, graph):
        service = tiny_service(max_in_flight=1, retry_after_s=0.1)
        with PartitionServer(service, port=0) as server:
            server.start()
            service._admit()
            threading.Thread(
                target=lambda: (time.sleep(0.4), service._release()),
                daemon=True,
            ).start()
            reply = request_partition(
                _payload(graph), port=server.port, timeout=10.0, retries=4
            )
            assert reply["degraded"] is False
            assert fetch_metrics(port=server.port)["throttled"] >= 1

    def test_degraded_flag_in_http_payload(self, graph):
        service = tiny_service(request_deadline=1e-9)
        with PartitionServer(service, port=0) as server:
            server.start()
            reply = request_partition(
                _payload(graph), port=server.port, timeout=10.0
            )
            assert reply["degraded"] is True
            assert "deadline" in reply["degraded_reason"]


class TestClientRetries:
    def test_dropped_connection_retried(self, graph):
        plan = FaultPlan(
            [Fault(site="server", kind="drop", at=("/partition",))]
        )
        service = tiny_service()
        with PartitionServer(service, port=0, fault_plan=plan) as server:
            server.start()
            reply = request_partition(
                _payload(graph), port=server.port, timeout=10.0, retries=2
            )
            assert reply["degraded"] is False
            assert plan.counts()["fired_total"] == 1

    def test_retries_exhausted_raises(self, graph):
        plan = FaultPlan([Fault(site="server", kind="drop", times=-1)])
        service = tiny_service()
        with PartitionServer(service, port=0, fault_plan=plan) as server:
            server.start()
            with pytest.raises(ServiceError, match="failed"):
                request_partition(
                    _payload(graph), port=server.port, timeout=5.0, retries=1
                )

    def test_client_errors_not_retried(self, graph):
        # 422 must raise immediately (retrying a bad request can't help).
        service = tiny_service()
        with PartitionServer(service, port=0) as server:
            server.start()
            t0 = time.monotonic()
            with pytest.raises(ServiceError, match="422"):
                request_partition(
                    {"graph": "nope"}, port=server.port,
                    timeout=5.0, retries=5,
                )
            assert time.monotonic() - t0 < 2.0  # no backoff sleeps happened

    def test_default_timeouts_fail_fast(self):
        assert DEFAULT_TIMEOUT_S == 60.0
        assert DEFAULT_RETRIES == 2


class TestPersistentServing:
    def test_service_restart_warm_starts_from_journal(self, graph, tmp_path):
        cache_dir = str(tmp_path / "cache")
        service = tiny_service(cache_dir=cache_dir)
        request = PartitionRequest(graph=graph, n_chips=4)
        first = service.submit(request)
        assert not first.cached
        service.close()

        restarted = tiny_service(cache_dir=cache_dir)
        second = restarted.submit(request)
        assert second.cached
        np.testing.assert_array_equal(second.assignment, first.assignment)
        stats = restarted.metrics()["cache"]
        assert stats["persistent"] is True
        assert stats["warm_entries"] == 1
