"""Canonical graph fingerprints: stability, invariance, and sensitivity."""

import json

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.graphs.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graphs.zoo import (
    build_autoencoder,
    build_bert,
    build_cnn,
    build_decoder,
    build_gru,
    build_inception_cnn,
    build_lstm,
    build_mlp,
    build_mobilenet,
    build_residual_cnn,
    build_unet,
)
from repro.hardware.topology import BiRing, Crossbar, Mesh2D, UniRing
from repro.serve.fingerprint import (
    PlatformDescriptor,
    graph_fingerprint,
    request_fingerprint,
)
from tests.conftest import random_dag

#: Every zoo family (BERT scaled down so the sweep stays fast).
ZOO_BUILDERS = {
    "mlp": build_mlp,
    "autoencoder": build_autoencoder,
    "cnn": build_cnn,
    "resnet": build_residual_cnn,
    "inception": build_inception_cnn,
    "lstm": build_lstm,
    "gru": build_gru,
    "decoder": build_decoder,
    "unet": build_unet,
    "mobilenet": build_mobilenet,
    "bert-small": lambda: build_bert(
        layers=1, hidden=64, heads=2, seq=16, target_nodes=None
    ),
}


class TestRoundtripStability:
    @pytest.mark.parametrize("name", sorted(ZOO_BUILDERS))
    def test_save_load_roundtrip_preserves_fingerprint(self, name, tmp_path):
        """Satellite: the fingerprint is identical before/after ``.npz``
        serialization for every zoo graph family."""
        graph = ZOO_BUILDERS[name]()
        before = graph_fingerprint(graph)
        path = str(tmp_path / f"{name}.npz")
        save_graph(graph, path)
        assert graph_fingerprint(load_graph(path)) == before

    @pytest.mark.parametrize("name", sorted(ZOO_BUILDERS))
    def test_json_wire_roundtrip_preserves_fingerprint(self, name):
        """The HTTP wire format (graph_to_dict through a real JSON encode)
        also preserves the fingerprint bit-for-bit."""
        graph = ZOO_BUILDERS[name]()
        wire = json.loads(json.dumps(graph_to_dict(graph)))
        assert graph_fingerprint(graph_from_dict(wire)) == graph_fingerprint(graph)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_dag_roundtrip(self, seed, tmp_path):
        graph = random_dag(seed, 23)
        path = str(tmp_path / "g.npz")
        save_graph(graph, path)
        assert graph_fingerprint(load_graph(path)) == graph_fingerprint(graph)


def _diamond(order: "list[str]"):
    """The same 4-node diamond built with nodes inserted in ``order``."""
    spec = {
        "in": (OpType.INPUT, 0.0, 64.0, 0.0),
        "left": (OpType.MATMUL, 5.0, 128.0, 256.0),
        "right": (OpType.RELU, 1.0, 128.0, 0.0),
        "out": (OpType.ADD, 2.0, 64.0, 0.0),
    }
    edges = [("in", "left"), ("in", "right"), ("left", "out"), ("right", "out")]
    b = GraphBuilder("diamond")
    ids = {}
    for name in order:
        op, c, o, p = spec[name]
        ids[name] = b.add_node(name, op, compute_us=c, output_bytes=o, param_bytes=p)
    for s, d in edges:
        b.add_edge(ids[s], ids[d])
    return b.build()


class TestInsertionOrderInvariance:
    def test_diamond_orders_agree(self):
        fps = {
            graph_fingerprint(_diamond(order))
            for order in (
                ["in", "left", "right", "out"],
                ["in", "right", "left", "out"],
                ["out", "in", "left", "right"],
            )
        }
        assert len(fps) == 1

    def test_graph_name_is_metadata(self):
        from repro.graphs.graph import CompGraph

        a = _diamond(["in", "left", "right", "out"])
        renamed = CompGraph(
            names=a.names,
            op_types=a.op_types,
            compute_us=a.compute_us,
            output_bytes=a.output_bytes,
            param_bytes=a.param_bytes,
            src=a.src,
            dst=a.dst,
            name="renamed",
        )
        assert graph_fingerprint(a) == graph_fingerprint(renamed)


class TestSensitivity:
    def test_attribute_change_changes_fingerprint(self):
        base = random_dag(3, 12)
        bumped = base.compute_us.copy()
        bumped[5] += 1e-9
        from repro.graphs.graph import CompGraph

        changed = CompGraph(
            names=base.names,
            op_types=base.op_types,
            compute_us=bumped,
            output_bytes=base.output_bytes,
            param_bytes=base.param_bytes,
            src=base.src,
            dst=base.dst,
            name=base.name,
        )
        assert graph_fingerprint(changed) != graph_fingerprint(base)

    def test_extra_edge_changes_fingerprint(self):
        a = _diamond(["in", "left", "right", "out"])
        b = GraphBuilder("diamond")
        ids = {}
        for name, (op, c, o, p) in {
            "in": (OpType.INPUT, 0.0, 64.0, 0.0),
            "left": (OpType.MATMUL, 5.0, 128.0, 256.0),
            "right": (OpType.RELU, 1.0, 128.0, 0.0),
            "out": (OpType.ADD, 2.0, 64.0, 0.0),
        }.items():
            ids[name] = b.add_node(name, op, compute_us=c, output_bytes=o, param_bytes=p)
        for s, d in [("in", "left"), ("in", "right"), ("left", "out"),
                     ("right", "out"), ("in", "out")]:
            b.add_edge(ids[s], ids[d])
        assert graph_fingerprint(b.build()) != graph_fingerprint(a)

    def test_node_rename_changes_fingerprint(self):
        a = random_dag(4, 10)
        from repro.graphs.graph import CompGraph

        renamed = CompGraph(
            names=tuple(["other"] + list(a.names[1:])),
            op_types=a.op_types,
            compute_us=a.compute_us,
            output_bytes=a.output_bytes,
            param_bytes=a.param_bytes,
            src=a.src,
            dst=a.dst,
            name=a.name,
        )
        assert graph_fingerprint(renamed) != graph_fingerprint(a)


class TestPlatformDescriptor:
    def test_legacy_none_equals_explicit_uniring(self):
        assert PlatformDescriptor.of(4) == PlatformDescriptor.of(4, UniRing(4))

    def test_distinct_platforms_distinct_tokens(self):
        descriptors = [
            PlatformDescriptor.of(4),
            PlatformDescriptor.of(6),
            PlatformDescriptor.of(4, BiRing(4)),
            PlatformDescriptor.of(4, Mesh2D(2, 2)),
            PlatformDescriptor.of(6, Mesh2D(2, 3)),
            PlatformDescriptor.of(6, Mesh2D(3, 2)),
            PlatformDescriptor.of(4, Crossbar(4)),
        ]
        tokens = {d.token() for d in descriptors}
        assert len(tokens) == len(descriptors)

    def test_chip_mismatch_rejected(self):
        with pytest.raises(ValueError, match="topology is for"):
            PlatformDescriptor.of(6, Mesh2D(2, 2))


class TestRequestFingerprint:
    def test_every_field_is_load_bearing(self):
        graph = random_dag(0, 10)
        base = dict(
            platform=PlatformDescriptor.of(4),
            objective="throughput",
            cost_model="analytical",
            samples=16,
            checkpoint=None,
        )
        reference = request_fingerprint(graph, **base)
        variants = [
            dict(base, platform=PlatformDescriptor.of(4, Mesh2D(2, 2))),
            dict(base, objective="latency"),
            dict(base, cost_model="simulator"),
            dict(base, samples=17),
            dict(base, checkpoint=("prod", 3)),
        ]
        fps = {request_fingerprint(graph, **v) for v in variants}
        assert reference not in fps and len(fps) == len(variants)

    def test_accepts_precomputed_graph_fingerprint(self):
        graph = random_dag(1, 8)
        platform = PlatformDescriptor.of(4)
        assert request_fingerprint(graph, platform) == request_fingerprint(
            graph_fingerprint(graph), platform
        )
