"""Test package."""
