"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_positive,
    check_probability_matrix,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.5, "x") == 3.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestCheckArray1d:
    def test_coerces_list(self):
        out = check_array_1d([1, 2, 3], "x")
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_array_1d(np.zeros((2, 2)), "x")

    def test_size_check(self):
        with pytest.raises(ValueError):
            check_array_1d([1, 2], "x", size=3)


class TestCheckProbabilityMatrix:
    def test_accepts_valid(self):
        mat = np.full((3, 4), 0.25)
        out = check_probability_matrix(mat, 3, 4)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.full((3, 4), 0.25), 4, 3)

    def test_rejects_negative(self):
        mat = np.full((2, 2), 0.5)
        mat[0, 0] = -0.5
        mat[0, 1] = 1.5
        with pytest.raises(ValueError):
            check_probability_matrix(mat, 2, 2)

    def test_rejects_bad_row_sum(self):
        mat = np.full((2, 2), 0.4)
        with pytest.raises(ValueError):
            check_probability_matrix(mat, 2, 2)
