"""Tests for seeded RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generator


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(8)
        b = as_generator(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(8), as_generator(2).random(8))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_numpy_integer_seed(self):
        rng = as_generator(np.int64(7))
        assert isinstance(rng, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawnGenerator:
    def test_children_are_deterministic(self):
        a = spawn_generator(as_generator(0), 1).random(4)
        b = spawn_generator(as_generator(0), 1).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        parent = as_generator(0)
        a = spawn_generator(parent, 1).random(4)
        parent2 = as_generator(0)
        b = spawn_generator(parent2, 2).random(4)
        assert not np.allclose(a, b)

    def test_rejects_negative_key(self):
        with pytest.raises(ValueError):
            spawn_generator(as_generator(0), -1)

    def test_rejects_non_generator(self):
        with pytest.raises(TypeError):
            spawn_generator(42, 0)
