"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from repro.hardware.chip import ChipSpec
from repro.hardware.package import MCMPackage


@pytest.fixture
def diamond_graph() -> CompGraph:
    """input -> (left, right) -> join -> out: the smallest branchy DAG."""
    b = GraphBuilder("diamond")
    inp = b.add_node("in", OpType.INPUT, compute_us=1.0, output_bytes=100.0)
    left = b.add_node("left", OpType.MATMUL, compute_us=10.0, output_bytes=200.0,
                      param_bytes=1000.0, inputs=[inp])
    right = b.add_node("right", OpType.RELU, compute_us=5.0, output_bytes=200.0,
                       inputs=[inp])
    join = b.add_node("join", OpType.ADD, compute_us=2.0, output_bytes=200.0,
                      inputs=[left, right])
    b.add_node("out", OpType.OUTPUT, compute_us=0.5, output_bytes=50.0, inputs=[join])
    return b.build()


@pytest.fixture
def chain_graph() -> CompGraph:
    """A 10-node linear chain with increasing costs."""
    b = GraphBuilder("chain")
    prev = b.add_node("n0", OpType.INPUT, compute_us=1.0, output_bytes=64.0)
    for i in range(1, 10):
        prev = b.add_node(
            f"n{i}", OpType.RELU, compute_us=float(i), output_bytes=64.0,
            inputs=[prev],
        )
    return b.build()


@pytest.fixture
def small_package() -> MCMPackage:
    """A 4-chip package with small SRAM for memory-pressure tests."""
    return MCMPackage(n_chips=4, chip=ChipSpec(sram_bytes=1 * 2**20))


@pytest.fixture
def roomy_package() -> MCMPackage:
    """A 4-chip package with SRAM large enough for any test graph."""
    return MCMPackage(n_chips=4, chip=ChipSpec(sram_bytes=2**34))


def random_dag(seed: int, n_nodes: int, edge_prob: float = 0.25) -> CompGraph:
    """Deterministic random DAG: edges only from lower to higher node ids."""
    rng = np.random.default_rng(seed)
    b = GraphBuilder(f"dag{seed}")
    for i in range(n_nodes):
        b.add_node(
            f"n{i}",
            OpType.RELU if i else OpType.INPUT,
            compute_us=float(rng.uniform(0.5, 10.0)),
            output_bytes=float(rng.uniform(16, 4096)),
            param_bytes=float(rng.uniform(0, 2048)),
        )
    for j in range(1, n_nodes):
        preds = [i for i in range(j) if rng.random() < edge_prob]
        if not preds:
            preds = [int(rng.integers(0, j))]
        for i in preds:
            b.add_edge(i, j)
    return b.build()


# Hypothesis strategy: parameters for random_dag.
dag_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=2, max_value=40),      # nodes
)
