"""Equivalence tests for the fused tape ops (linear, SAGE layer, PPO loss).

Each fused op must match the unfused composition it replaced: bitwise on
the forward pass (same expression, same evaluation order) and to finite-
difference accuracy on gradients.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import mean_aggregation_matrix
from repro.nn.tensor import Tensor


def _num_grad(fn, x, eps=1e-6):
    """Central finite differences of a scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn()
        x[idx] = orig - eps
        lo = fn()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_matches_unfused_bitwise(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((7, 5)))
        w = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        fused = F.linear(x, w, b)
        unfused = F.add(F.matmul(x, w), b)
        np.testing.assert_array_equal(fused.data, unfused.data)

    def test_gradients_match_unfused(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        F.mean(F.linear(x, w, b)).backward()
        fused_grads = [x.grad.copy(), w.grad.copy(), b.grad.copy()]
        for t in (x, w, b):
            t.zero_grad()
        F.mean(F.add(F.matmul(x, w), b)).backward()
        for fused, t in zip(fused_grads, (x, w, b)):
            np.testing.assert_allclose(fused, t.grad, rtol=1e-12)


class TestSageMeanCombine:
    def _setup(self):
        rng = np.random.default_rng(2)
        n, fin, fout = 9, 5, 4
        src = rng.integers(0, n - 1, 14)
        dst = np.minimum(src + 1 + rng.integers(0, 3, 14), n - 1)
        agg = mean_aggregation_matrix(n, src, dst)
        h = Tensor(rng.standard_normal((n, fin)), requires_grad=True)
        ws = Tensor(rng.standard_normal((fin, fout)), requires_grad=True)
        wn = Tensor(rng.standard_normal((fin, fout)), requires_grad=True)
        b = Tensor(rng.standard_normal(fout), requires_grad=True)
        return agg, h, ws, wn, b

    def test_forward_matches_unfused_bitwise(self):
        agg, h, ws, wn, b = self._setup()
        fused = F.sage_mean_combine(h, agg, ws, wn, b)
        neigh = F.sparse_mean_aggregate(agg, h)
        unfused = F.relu(F.add(F.add(F.matmul(h, ws), F.matmul(neigh, wn)), b))
        np.testing.assert_array_equal(fused.data, unfused.data)

    def test_gradients_match_finite_differences(self):
        agg, h, ws, wn, b = self._setup()
        F.mean(F.sage_mean_combine(h, agg, ws, wn, b)).backward()
        for t in (h, ws, wn, b):
            expected = _num_grad(
                lambda: float(F.mean(F.sage_mean_combine(h, agg, ws, wn, b)).data),
                t.data,
            )
            np.testing.assert_allclose(t.grad, expected, rtol=1e-5, atol=1e-7)

    def test_constant_input_skips_input_grad(self):
        agg, h, ws, wn, b = self._setup()
        const_h = Tensor(h.data)  # no grad
        out = F.sage_mean_combine(const_h, agg, ws, wn, b)
        F.mean(out).backward()
        assert const_h.grad is None
        assert ws.grad is not None


class TestPPOObjective:
    def _setup(self):
        rng = np.random.default_rng(3)
        rows, c, r = 12, 4, 3
        logits = rng.standard_normal((rows, c))
        log_probs = Tensor(logits, requires_grad=True)
        values = Tensor(rng.standard_normal(r), requires_grad=True)
        actions = rng.integers(0, c, rows)
        old_lp = rng.standard_normal(rows) * 0.1 - 1.5
        adv = rng.standard_normal(rows)
        returns = rng.standard_normal(r)
        return log_probs, values, actions, old_lp, adv, returns

    def _unfused(self, log_probs, values, actions, old_lp, adv, returns):
        clip_ratio, value_coef, entropy_coef = 0.2, 0.5, 0.01
        new_lp = F.take_along_last(log_probs, actions)
        ratio = F.exp(F.sub(new_lp, Tensor(old_lp)))
        unclipped = F.mul(ratio, Tensor(adv))
        clipped = F.mul(F.clip(ratio, 1 - clip_ratio, 1 + clip_ratio), Tensor(adv))
        policy_loss = F.mul(F.mean(F.minimum(unclipped, clipped)), Tensor(-1.0))
        value_loss = F.mean(F.square(F.sub(values, Tensor(returns))))
        probs_t = F.exp(log_probs)
        entropy = F.mul(
            F.mean(F.sum(F.mul(probs_t, log_probs), axis=1)), Tensor(-1.0)
        )
        return F.add(
            F.add(policy_loss, F.mul(value_loss, Tensor(value_coef))),
            F.mul(entropy, Tensor(-entropy_coef)),
        )

    def test_loss_matches_unfused(self):
        log_probs, values, actions, old_lp, adv, returns = self._setup()
        fused, stats = F.ppo_objective(
            log_probs, values, actions, old_lp, adv, returns, 0.2, 0.5, 0.01
        )
        unfused = self._unfused(log_probs, values, actions, old_lp, adv, returns)
        np.testing.assert_allclose(fused.data, unfused.data, rtol=1e-12)
        assert stats["policy_loss"] == pytest.approx(stats["policy_loss"])

    def test_gradients_match_unfused(self):
        log_probs, values, actions, old_lp, adv, returns = self._setup()
        loss, _ = F.ppo_objective(
            log_probs, values, actions, old_lp, adv, returns, 0.2, 0.5, 0.01
        )
        loss.backward()
        fused_lp_grad = log_probs.grad.copy()
        fused_v_grad = values.grad.copy()
        log_probs.zero_grad()
        values.zero_grad()
        self._unfused(log_probs, values, actions, old_lp, adv, returns).backward()
        np.testing.assert_allclose(fused_lp_grad, log_probs.grad, rtol=1e-10)
        np.testing.assert_allclose(fused_v_grad, values.grad, rtol=1e-10)
