"""Property-based gradient checks over randomly composed expressions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor

#: unary ops safe on any real input
_UNARY = [F.relu, F.tanh, F.sigmoid, F.exp, F.square]
#: binary ops safe on any real input pair
_BINARY = [F.add, F.sub, F.mul, F.minimum]


def _numeric_grad(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


#: bounded-output ops safe to compose arbitrarily deep
_BOUNDED = [F.relu, F.tanh, F.sigmoid]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    depth=st.integers(1, 5),
)
def test_random_unary_chains_match_finite_differences(seed, depth):
    rng = np.random.default_rng(seed)
    # The first op may be unbounded (exp/square); the rest must be bounded
    # or compositions explode past what finite differences can resolve.
    ops = [int(rng.integers(0, len(_UNARY)))]
    ops += [int(rng.integers(0, len(_BOUNDED))) for _ in range(depth - 1)]
    chain = [_UNARY[ops[0]]] + [_BOUNDED[k] for k in ops[1:]]
    x = rng.normal(size=(3, 3))
    # keep away from relu/minimum kinks
    x[np.abs(x) < 0.05] = 0.3

    def forward(arr):
        t = Tensor(arr)
        for op in chain:
            t = op(t)
        return t.data.sum()

    t = Tensor(x.copy(), requires_grad=True)
    out = t
    for op in chain:
        out = op(out)
    F.sum(out).backward()
    expected = _numeric_grad(forward, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), op_idx=st.integers(0, len(_BINARY) - 1))
def test_binary_ops_match_finite_differences(seed, op_idx):
    rng = np.random.default_rng(seed)
    op = _BINARY[op_idx]
    other_arr = rng.normal(size=(4,))
    x = rng.normal(size=(4,))
    x[np.abs(x - other_arr) < 0.05] += 0.2  # avoid minimum ties
    other = Tensor(other_arr)

    t = Tensor(x.copy(), requires_grad=True)
    F.sum(op(t, other)).backward()
    expected = _numeric_grad(lambda arr: op(Tensor(arr), other).data.sum(), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_backward_is_linear_in_output_grad(seed):
    """grad(a*g) == a * grad(g) for the same computation."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, 2))

    def run(scale):
        t = Tensor(x, requires_grad=True)
        out = F.mul(F.tanh(t), Tensor(2.0))
        out.backward(np.full(out.shape, scale))
        return t.grad

    np.testing.assert_allclose(run(3.0), 3.0 * run(1.0), atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sum_then_split_grads_partition(seed):
    """Gradient of concat distributes to the right slices."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
    weights = rng.normal(size=(2, 8))
    out = F.mul(F.concat([a, b], axis=1), Tensor(weights))
    F.sum(out).backward()
    np.testing.assert_allclose(a.grad, weights[:, :3])
    np.testing.assert_allclose(b.grad, weights[:, 3:])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_softmax_grad_orthogonal_to_constant_shift(seed):
    """softmax is shift-invariant, so its gradient sums to ~0 per row."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    weights = Tensor(rng.normal(size=(3, 4)))
    F.sum(F.mul(F.softmax(x), weights)).backward()
    np.testing.assert_allclose(x.grad.sum(axis=1), 0.0, atol=1e-10)
