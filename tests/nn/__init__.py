"""Test package."""
