"""Regression: checkpoint loads must invalidate weights-version memos.

``PartitionPolicy.encode`` is cached per features object keyed on
``Module.weights_version()`` (the sum of per-tensor mutation counters).  A
checkpoint load that failed to bump every loaded tensor's version would
leave that key unchanged and serve embeddings computed with the *old*
weights — silently wrong zero-shot partitions.  These tests pin the
invariant for the whole load surface: ``Module.load_state_dict``, the
file-level ``load_state``, and the state-dict file helpers the checkpoint
registry uses.
"""

import numpy as np

from repro.graphs.zoo import build_mlp
from repro.nn.serialization import (
    load_state,
    load_state_dict_file,
    save_state,
    save_state_dict,
)
from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy


def _policy(seed=0) -> PartitionPolicy:
    return PartitionPolicy(
        n_chips=4, hidden=16, n_sage_layers=2, refine_iters=1, rng=seed
    )


class TestVersionBumps:
    def test_load_state_dict_bumps_every_tensor(self):
        policy = _policy()
        versions = [p.version for p in policy.parameters()]
        policy.load_state_dict(policy.state_dict())
        after = [p.version for p in policy.parameters()]
        assert all(b == a + 1 for a, b in zip(versions, after))

    def test_load_state_changes_weights_version(self, tmp_path):
        policy = _policy()
        path = str(tmp_path / "w.npz")
        save_state(policy, path)
        before = policy.weights_version()
        load_state(policy, path)
        assert policy.weights_version() != before

    def test_state_dict_file_roundtrip(self, tmp_path):
        policy = _policy(seed=3)
        path = str(tmp_path / "w.npz")
        save_state_dict(policy.state_dict(), path)
        state = load_state_dict_file(path)
        for key, value in policy.state_dict().items():
            np.testing.assert_array_equal(state[key], value)


class TestEncodeCacheInvalidation:
    def test_cached_encode_invalidated_after_load_state(self, tmp_path):
        """Satellite regression: a cached ``encode`` must not survive
        ``load_state`` — even when the loaded weights differ."""
        features = featurize(build_mlp())
        policy = _policy(seed=0)
        other = _policy(seed=99)  # different init: observably different h
        path = str(tmp_path / "other.npz")
        save_state(other, path)

        cached = policy.encode(features)
        assert policy.encode(features) is cached  # memo is live
        load_state(policy, path)
        fresh = policy.encode(features)
        assert fresh is not cached
        np.testing.assert_array_equal(fresh.data, other.encode(features).data)
        assert not np.allclose(fresh.data, cached.data)

    def test_cached_encode_invalidated_by_identical_reload(self, tmp_path):
        """Reloading the *same* weights still misses the memo (the version
        counter is mutation-count based, deliberately conservative)."""
        features = featurize(build_mlp())
        policy = _policy()
        path = str(tmp_path / "same.npz")
        save_state(policy, path)
        cached = policy.encode(features)
        load_state(policy, path)
        fresh = policy.encode(features)
        assert fresh is not cached
        np.testing.assert_array_equal(fresh.data, cached.data)

    def test_partitioner_install_checkpoint_skip_keeps_cache(self):
        """The warm-serving fast path: install_checkpoint with a matching
        tag skips the load, so the encoder memo stays valid (weights are
        untouched)."""
        from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
        from repro.rl.ppo import PPOConfig

        config = RLPartitionerConfig(
            hidden=16, n_sage_layers=1, refine_iters=1,
            ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
        )
        partitioner = RLPartitioner(4, config=config, rng=0)
        state = partitioner.state_dict()
        assert partitioner.install_checkpoint(state, tag=("prod", 1)) is True
        features = featurize(build_mlp())
        cached = partitioner.policy.encode(features)
        assert partitioner.install_checkpoint(state, tag=("prod", 1)) is False
        assert partitioner.policy.encode(features) is cached
        # A different tag is a real load: memo must fall out.
        assert partitioner.install_checkpoint(state, tag=("prod", 2)) is True
        assert partitioner.policy.encode(features) is not cached
