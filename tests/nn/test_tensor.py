"""Tests for the autodiff Tensor."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestBasics:
    def test_wraps_data_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_cuts_tape(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad

    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        assert (a + 1.0).requires_grad


class TestBackward:
    def test_scalar_backward_default_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        loss = (a * a).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, [4.0, 6.0])

    def test_nonscalar_requires_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_grad_accumulates(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_fanout_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        loss = (b + b).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_deep_graph_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_grad_shape_checked(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 1.0).backward(np.zeros(3))

    def test_constants_get_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])
        (a * c).sum().backward()
        assert c.grad is None


class TestBroadcasting:
    def test_bias_broadcast_grad(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])
        np.testing.assert_allclose(x.grad, np.ones((4, 3)))

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 5.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 2), 5.0))

    def test_keepdim_broadcast(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        s = Tensor(np.ones((3, 1)), requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, np.full((3, 1), 2.0))


class TestOperatorSugar:
    def test_arithmetic(self):
        a = Tensor([4.0])
        assert (a + 1.0).data[0] == 5.0
        assert (1.0 + a).data[0] == 5.0
        assert (a - 1.0).data[0] == 3.0
        assert (1.0 - a).data[0] == -3.0
        assert (a * 2.0).data[0] == 8.0
        assert (a / 2.0).data[0] == 2.0
        assert (8.0 / a).data[0] == 2.0
        assert (-a).data[0] == -4.0

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_reshape_and_mean(self):
        a = Tensor(np.arange(6, dtype=float))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.mean().item() == 2.5
