"""The int8 inference-only backend: quantization maths + serving pins.

Contracts (ROADMAP "Precision invariants", int8 entry):

* **Selection by name only.** ``resolve_backend("int8")`` returns the
  quantized backend, but its storage dtype is float32 and it is absent
  from the dtype map — an array can never silently select quantization,
  and ``PRECISIONS`` (the training precisions) does not grow.
* **Symmetric per-tensor quantization.** Zero stays exact, the round trip
  is within one quantization step, and the int8 GEMM with float32
  accumulation is exact integer arithmetic at encoder sizes.
* **Argmax-partition agreement.** The behavioural pin: across the graph
  zoo, the int8 policy head must place every *decided* node — float32
  top-2 probability margin above the declared tolerance budget — on the
  same chip as the float32 argmax; near-tie nodes may flip, but overall
  agreement stays above 90%.
* **Inference-only.** The PPO trainer refuses to step a quantized policy;
  the training CLI never exposes the precision.
"""

import numpy as np
import pytest

from repro.graphs.zoo import build_cnn, build_gru, build_mlp
from repro.nn.backend import (
    FLOAT32,
    INT8,
    PRECISIONS,
    SERVE_PRECISIONS,
    backend_of,
    dequantize,
    quantize_symmetric,
    resolve_backend,
)
from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy


class TestBackendResolution:
    def test_serve_precisions_superset(self):
        assert PRECISIONS == ("float64", "float32")
        assert SERVE_PRECISIONS == ("float64", "float32", "int8")

    def test_resolve_by_name(self):
        backend = resolve_backend("int8")
        assert backend is INT8
        assert backend.quantized
        assert backend.dtype == np.dtype(np.float32)
        assert backend.fused_gemm

    def test_float_backends_not_quantized(self):
        assert not resolve_backend("float64").quantized
        assert not FLOAT32.quantized

    def test_dtype_never_resolves_to_int8(self):
        """float32 arrays belong to FLOAT32; quantization is name-only."""
        assert backend_of(np.float32) is FLOAT32


class TestQuantizeSymmetric:
    def test_round_trip_within_one_step(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(37, 16))
        q, scale = quantize_symmetric(arr)
        assert q.dtype == np.int8
        assert np.abs(q).max() <= 127
        np.testing.assert_allclose(
            dequantize(q, scale), arr, atol=scale / 2 + 1e-12
        )

    def test_zero_is_exact(self):
        q, scale = quantize_symmetric(np.array([0.0, 1.0, -2.0]))
        assert q[0] == 0
        assert dequantize(q, scale)[0] == 0.0

    def test_all_zero_tensor(self):
        q, scale = quantize_symmetric(np.zeros((3, 3)))
        assert scale == 1.0
        assert np.all(q == 0)

    def test_extremes_hit_127(self):
        q, _ = quantize_symmetric(np.array([-3.0, 0.0, 3.0]))
        assert q[0] == -127 and q[2] == 127


def _policies(rng=0, hidden=32, n_sage_layers=2):
    kwargs = dict(hidden=hidden, n_sage_layers=n_sage_layers, rng=rng)
    return (
        PartitionPolicy(4, backend="float32", **kwargs),
        PartitionPolicy(4, backend="int8", **kwargs),
    )


class TestInt8Encoder:
    def test_encoder_within_tolerance_budget(self):
        p32, p8 = _policies()
        feats = featurize(build_mlp())
        h32 = p32.encode(feats).data
        h8 = p8.encode(feats).data
        assert h8.dtype == np.float32
        np.testing.assert_allclose(h8, h32, rtol=INT8.rtol, atol=INT8.atol)

    @pytest.mark.parametrize(
        "builder", [build_mlp, build_cnn, build_gru],
        ids=["mlp", "cnn", "gru"],
    )
    def test_argmax_partition_agreement_across_zoo(self, builder):
        """The behavioural pin: on the same conditioning, the int8 policy
        head places every *decided* node on the same chip as float32 —
        argmax must agree wherever the float32 probability margin (top-1
        minus top-2) exceeds the backend's declared tolerance budget.
        Near-tie nodes (margin inside the budget) are allowed to flip —
        that is exactly what the tolerance budget declares — but even
        counting them, agreement must stay above 90%."""
        p32, p8 = _policies(rng=7)
        feats = featurize(builder())
        conditioning = np.zeros((1, feats.n_nodes), dtype=np.int64)
        probs32 = p32.forward_batch(feats, conditioning).probs[0]
        probs8 = p8.forward_batch(feats, conditioning).probs[0]
        am32 = probs32.argmax(axis=1)
        am8 = probs8.argmax(axis=1)
        sorted32 = np.sort(probs32, axis=1)
        margin = sorted32[:, -1] - sorted32[:, -2]
        decided = margin > INT8.atol
        assert decided.any()
        np.testing.assert_array_equal(am32[decided], am8[decided])
        assert (am32 == am8).mean() > 0.9

    def test_quantization_stats(self):
        _, p8 = _policies()
        stats = p8.quantization_stats()
        assert stats["n_layers"] == 2
        assert stats["max_abs_err"] > 0.0
        assert all(l["scale"] > 0.0 for l in stats["layers"])
        assert stats["max_abs_err"] == max(
            l["max_abs_err"] for l in stats["layers"]
        )

    def test_float_policy_has_no_stats(self):
        p32, _ = _policies()
        assert p32.quantization_stats() is None

    def test_checkpoint_install_requantizes(self):
        """Loading new weights bumps versions, so the memoised int8 cache
        refreshes — stale quantized weights can never serve."""
        _, p8 = _policies(rng=3)
        donor = PartitionPolicy(4, backend="float32", hidden=32,
                                n_sage_layers=2, rng=9)
        feats = featurize(build_mlp())
        h_before = p8.encode(feats).data.copy()
        p8.load_state_dict(donor.state_dict())
        h_after = p8.encode(feats).data
        h_donor = donor.encode(feats).data
        assert not np.array_equal(h_after, h_before)
        np.testing.assert_allclose(h_after, h_donor, rtol=INT8.rtol, atol=INT8.atol)


class TestInferenceOnly:
    def test_ppo_trainer_refuses_quantized_policy(self):
        from repro.core.environment import PartitionEnvironment
        from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
        from repro.hardware.analytical import AnalyticalCostModel
        from repro.hardware.package import MCMPackage
        from repro.rl.ppo import PPOConfig

        config = RLPartitionerConfig(
            hidden=16, n_sage_layers=1, precision="int8",
            ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
        )
        partitioner = RLPartitioner(4, config=config, rng=0)
        env = PartitionEnvironment(
            build_mlp(), AnalyticalCostModel(MCMPackage(n_chips=4)), 4
        )
        # Zero-shot draws (the serving path) work fine ...
        draw = partitioner.draw_window(env, 4)
        assert draw.improvements is not None and len(draw.improvements) == 4
        # ... but any training step is refused.
        with pytest.raises(RuntimeError, match="inference-only"):
            partitioner.search(env, 8)

    def test_training_cli_rejects_int8(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "mlp", "--precision", "int8"]
            )

    def test_serve_cli_accepts_int8(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--precision", "int8"])
        assert args.precision == "int8"
