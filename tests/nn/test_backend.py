"""The numeric backend seam: resolution, dtype propagation, fused kernels.

Contract under test (the PR's tentpole): the float64 backend is the frozen
bit-for-bit default — fused kernels never engage on it — while the float32
backend opts into summation-order-changing fusion (wide SAGE GEMM, tiled
policy-head, flat Adam) pinned here by tolerance-bounded equivalence
against the serial float64 reference.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.zoo import build_mlp
from repro.nn import functional as F
from repro.nn.backend import (
    FLOAT32,
    FLOAT64,
    PRECISIONS,
    Backend,
    backend_of,
    resolve_backend,
    typed_aggregation,
)
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, debug_checks_enabled
from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy


class TestResolution:
    def test_none_resolves_to_frozen_float64_default(self):
        backend = resolve_backend(None)
        assert backend is FLOAT64
        assert backend.dtype == np.dtype(np.float64)
        assert not backend.fused_gemm

    def test_names_dtypes_and_backends_resolve(self):
        assert resolve_backend("float32") is FLOAT32
        assert resolve_backend("float64") is FLOAT64
        assert resolve_backend(np.float32) is FLOAT32
        assert resolve_backend(np.dtype(np.float64)) is FLOAT64
        assert resolve_backend(FLOAT32) is FLOAT32

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("bfloat16")

    def test_backend_of_maps_payload_dtypes(self):
        assert backend_of(np.dtype(np.float64)) is FLOAT64
        assert backend_of(np.dtype(np.float32)) is FLOAT32

    def test_precisions_tuple_matches_backends(self):
        assert PRECISIONS == ("float64", "float32")
        for name in PRECISIONS:
            assert resolve_backend(name).name == name

    def test_float32_carries_tolerances_float64_is_exact(self):
        assert FLOAT64.rtol == 0.0 and FLOAT64.atol == 0.0
        assert FLOAT32.rtol > 0.0 and FLOAT32.atol > 0.0
        assert FLOAT32.fused_gemm and not FLOAT64.fused_gemm

    def test_backend_is_immutable(self):
        with pytest.raises(Exception):
            FLOAT32.fused_gemm = False


class TestDtypePropagation:
    """float32 tensors stay float32 through every op and scalar mix."""

    def test_default_tensor_is_float64(self):
        assert Tensor([1.0, 2.0]).data.dtype == np.dtype(np.float64)

    def test_dtype_kwarg_creates_float32_leaf(self):
        t = Tensor([1.0, 2.0], dtype=np.float32)
        assert t.data.dtype == np.dtype(np.float32)

    @pytest.mark.parametrize(
        "expr",
        [
            lambda t: t + 1.0,
            lambda t: 1.0 - t,
            lambda t: t * 2.0,
            lambda t: t / 2.0,
            lambda t: 2.0 / t,
            lambda t: -t,
        ],
        ids=["add", "rsub", "mul", "div", "rdiv", "neg"],
    )
    def test_python_scalars_do_not_promote_float32(self, expr):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = expr(t)
        assert out.data.dtype == np.dtype(np.float32)
        F.sum(out).backward()
        assert t.grad.dtype == np.dtype(np.float32)

    def test_float64_scalar_mix_still_float64(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert (t * 0.5 + 1.0).data.dtype == np.dtype(np.float64)

    def test_backward_grads_match_param_dtype(self):
        for dtype in (np.float64, np.float32):
            w = Tensor(np.ones((3, 2), dtype=dtype), requires_grad=True)
            x = Tensor(np.ones((4, 3), dtype=dtype))
            F.sum(F.relu(x @ w)).backward()
            assert w.grad.dtype == np.dtype(dtype)


class TestTypedAggregation:
    def _agg(self):
        rows = np.array([[0.0, 0.5, 0.5], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        return sp.csr_matrix(rows)

    def test_matching_dtype_returns_identical_object(self):
        agg = self._agg()
        assert typed_aggregation(agg, np.dtype(np.float64)) is agg

    def test_float32_variant_is_cached(self):
        agg = self._agg()
        v1 = typed_aggregation(agg, np.dtype(np.float32))
        v2 = typed_aggregation(agg, np.dtype(np.float32))
        assert v1 is v2
        assert v1.dtype == np.dtype(np.float32)
        np.testing.assert_allclose(v1.toarray(), agg.toarray(), rtol=1e-6)

    def test_float32_product_stays_float32(self):
        agg = typed_aggregation(self._agg(), np.dtype(np.float32))
        h = np.ones((3, 4), dtype=np.float32)
        assert (agg @ h).dtype == np.dtype(np.float32)

    def test_dense_aggregation_matrix_supported(self):
        dense = np.eye(3)
        out = typed_aggregation(dense, np.dtype(np.float32))
        assert out.dtype == np.dtype(np.float32)


def _sage_inputs(rng, dtype):
    n, in_f, out_f = 7, 5, 6
    h = Tensor(rng.standard_normal((n, in_f)).astype(dtype), requires_grad=True)
    w_self = Tensor(rng.standard_normal((in_f, out_f)).astype(dtype), requires_grad=True)
    w_neigh = Tensor(rng.standard_normal((in_f, out_f)).astype(dtype), requires_grad=True)
    bias = Tensor(rng.standard_normal(out_f).astype(dtype), requires_grad=True)
    agg = sp.csr_matrix(
        np.abs(rng.standard_normal((n, n))) * (rng.random((n, n)) < 0.4)
    )
    return h, w_self, w_neigh, bias, agg


class TestFusedSage:
    """The wide-GEMM SAGE hop matches the serial float64 composition."""

    def test_float32_forward_and_grads_match_float64_reference(self):
        rng = np.random.default_rng(0)
        h64, ws64, wn64, b64, agg = _sage_inputs(rng, np.float64)
        ref = F.sage_mean_combine(h64, agg, ws64, wn64, b64)
        seed = F.sum(ref * ref)
        seed.backward()

        h32 = Tensor(h64.data.astype(np.float32), requires_grad=True)
        ws32 = Tensor(ws64.data.astype(np.float32), requires_grad=True)
        wn32 = Tensor(wn64.data.astype(np.float32), requires_grad=True)
        b32 = Tensor(b64.data.astype(np.float32), requires_grad=True)
        out = F.sage_mean_combine(h32, agg, ws32, wn32, b32)
        assert out.data.dtype == np.dtype(np.float32)
        F.sum(out * out).backward()

        np.testing.assert_allclose(out.data, ref.data, rtol=1e-4, atol=1e-5)
        for fused, serial in [(h32, h64), (ws32, ws64), (wn32, wn64), (b32, b64)]:
            np.testing.assert_allclose(fused.grad, serial.grad, rtol=1e-3, atol=1e-4)

    def test_float64_path_is_bitwise_unfused_composition(self):
        rng = np.random.default_rng(1)
        h, w_self, w_neigh, bias, agg = _sage_inputs(rng, np.float64)
        fused = F.sage_mean_combine(h, agg, w_self, w_neigh, bias)
        neigh = agg @ h.data
        manual = np.maximum(
            h.data @ w_self.data + neigh @ w_neigh.data + bias.data, 0.0
        )
        np.testing.assert_array_equal(fused.data, manual)


class TestTiledLinear:
    """tiled_linear == linear over the tiled concat, within f32 tolerance."""

    def _case(self, rng):
        n, in_h, in_e, out, r = 5, 4, 3, 6, 3
        h = rng.standard_normal((n, in_h))
        extra = rng.standard_normal((r * n, in_e))
        w = rng.standard_normal((in_h + in_e, out))
        b = rng.standard_normal(out)
        return h, extra, w, b, r

    def test_matches_serial_reference_forward_and_backward(self):
        rng = np.random.default_rng(2)
        h, extra, w, b, r = self._case(rng)
        n = h.shape[0]

        # Serial float64 reference through the unfused tape.
        h64 = Tensor(h, requires_grad=True)
        w64 = Tensor(w, requires_grad=True)
        b64 = Tensor(b, requires_grad=True)
        stacked = F.concat([h64] * r, axis=0)
        full = F.concat([stacked, Tensor(extra)], axis=1)
        ref = F.linear(full, w64, b64)
        F.sum(ref * ref).backward()

        h32 = Tensor(h.astype(np.float32), requires_grad=True)
        w32 = Tensor(w.astype(np.float32), requires_grad=True)
        b32 = Tensor(b.astype(np.float32), requires_grad=True)
        out = F.tiled_linear(h32, extra, w32, b32, r)
        assert out.data.dtype == np.dtype(np.float32)
        assert out.data.shape == (r * n, w.shape[1])
        F.sum(out * out).backward()

        np.testing.assert_allclose(out.data, ref.data, rtol=1e-4, atol=1e-5)
        for fused, serial in [(h32, h64), (w32, w64), (b32, b64)]:
            np.testing.assert_allclose(fused.grad, serial.grad, rtol=1e-3, atol=1e-4)

    def test_row_count_mismatch_rejected(self):
        rng = np.random.default_rng(3)
        h, extra, w, b, r = self._case(rng)
        with pytest.raises(ValueError, match="n_tile"):
            F.tiled_linear(
                Tensor(h.astype(np.float32)),
                extra[:-1],
                Tensor(w.astype(np.float32)),
                Tensor(b.astype(np.float32)),
                r,
            )


def _adam_params(rng, dtype, shapes=((3, 4), (4,), (2, 3))):
    return [
        Tensor(rng.standard_normal(s).astype(dtype), requires_grad=True)
        for s in shapes
    ]


class TestFusedAdam:
    def test_fusion_engages_only_on_float32(self):
        rng = np.random.default_rng(4)
        assert Adam(_adam_params(rng, np.float32))._fused
        assert not Adam(_adam_params(rng, np.float64))._fused
        mixed = _adam_params(rng, np.float32) + _adam_params(rng, np.float64)
        assert not Adam(mixed)._fused

    def test_flat_step_matches_textbook_float32_loop_bitwise(self):
        """Same element-wise maths, different loop structure: the fused
        sweep must agree with the per-parameter float32 reference exactly."""
        rng = np.random.default_rng(5)
        params = _adam_params(rng, np.float32)
        opt = Adam(params, lr=1e-2)
        ref = [p.data.copy() for p in params]
        m = [np.zeros_like(r) for r in ref]
        v = [np.zeros_like(r) for r in ref]
        for t in range(1, 6):
            grads = [rng.standard_normal(p.data.shape).astype(np.float32) for p in params]
            for p, g in zip(params, grads):
                p.grad = g.copy()
            opt.step()
            bias1 = 1.0 - opt.beta1**t
            bias2 = 1.0 - opt.beta2**t
            for i, g in enumerate(grads):
                m[i] = m[i] * opt.beta1 + g * (1.0 - opt.beta1)
                v[i] = v[i] * opt.beta2 + (g * g) * (1.0 - opt.beta2)
                ref[i] -= (m[i] / bias1) * opt.lr / (np.sqrt(v[i] / bias2) + opt.eps)
            for p, r in zip(params, ref):
                np.testing.assert_array_equal(p.data, r)
        for got, want in zip(opt._m, m):
            np.testing.assert_array_equal(got, want)

    def test_missing_grad_falls_back_to_skip_semantics(self):
        """None grads route through the serial loop: the gradless param and
        its moments stay untouched, the others still update through the
        flat views so the next fused step sees consistent state."""
        rng = np.random.default_rng(6)
        params = _adam_params(rng, np.float32)
        opt = Adam(params, lr=1e-2)
        assert opt._fused
        frozen = params[1].data.copy()
        params[0].grad = np.ones_like(params[0].data)
        params[1].grad = None
        params[2].grad = np.ones_like(params[2].data)
        opt.step()
        np.testing.assert_array_equal(params[1].data, frozen)
        assert not np.any(opt._m[1])
        assert np.any(opt._m[0]) and np.any(opt._m[2])
        assert not np.array_equal(params[0].data, _adam_params(
            np.random.default_rng(6), np.float32)[0].data)
        # Views still alias the flat buffers after the serial fallback.
        assert opt._m[0].base is opt._flat_m

    def test_load_state_dict_restores_into_active_dtype(self):
        rng = np.random.default_rng(7)
        params = _adam_params(rng, np.float32)
        opt = Adam(params)
        state = {
            "t": 3,
            "m": [np.full(p.data.shape, 0.25, dtype=np.float64) for p in params],
            "v": [np.full(p.data.shape, 0.5, dtype=np.float64) for p in params],
        }
        opt.load_state_dict(state)
        for m, v in zip(opt._m, opt._v):
            assert m.dtype == np.dtype(np.float32)
            assert v.dtype == np.dtype(np.float32)
            assert m.base is opt._flat_m and v.base is opt._flat_v
        # And the reverse direction: float64 optimiser, float32 checkpoint.
        params64 = _adam_params(np.random.default_rng(7), np.float64)
        opt64 = Adam(params64)
        opt64.load_state_dict(
            {
                "t": 1,
                "m": [np.zeros(p.data.shape, dtype=np.float32) for p in params64],
                "v": [np.zeros(p.data.shape, dtype=np.float32) for p in params64],
            }
        )
        assert all(m.dtype == np.dtype(np.float64) for m in opt64._m)


class TestModuleStateLoadDtype:
    def test_cross_precision_load_keeps_active_backend(self):
        for active, stored in [(np.float32, np.float64), (np.float64, np.float32)]:
            layer = Linear(4, 3, rng=0, dtype=active)
            donor = Linear(4, 3, rng=1, dtype=stored)
            before = layer.weights_version()
            layer.load_state_dict(donor.state_dict())
            assert layer.weight.data.dtype == np.dtype(active)
            assert layer.bias.data.dtype == np.dtype(active)
            assert layer.weights_version() != before
            np.testing.assert_allclose(
                layer.weight.data,
                donor.weight.data.astype(active),
                rtol=1e-6,
                atol=1e-7,
            )


class TestMutationGuard:
    """REPRO_NN_CHECKS=1 catches in-place writes that skipped bump_version."""

    def _policy_and_features(self):
        policy = PartitionPolicy(4, hidden=16, n_sage_layers=1, rng=0)
        return policy, featurize(build_mlp())

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_CHECKS", raising=False)
        assert not debug_checks_enabled()
        policy, feats = self._policy_and_features()
        policy.encode(feats)
        policy.sage_layers[0].w_self.data[0, 0] += 1.0  # silent staleness
        policy.encode(feats)  # no guard, no error

    def test_stealth_weight_mutation_raises_on_memo_hit(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_CHECKS", "1")
        policy, feats = self._policy_and_features()
        policy.encode(feats)
        policy.sage_layers[0].w_self.data[0, 0] += 1.0  # no bump_version()
        with pytest.raises(RuntimeError, match="bump_version"):
            policy.encode(feats)

    def test_stealth_feature_mutation_raises_on_memo_hit(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_CHECKS", "1")
        policy, feats = self._policy_and_features()
        policy.encode(feats)
        feats.node_features[0, 0] += 1.0
        with pytest.raises(RuntimeError, match="mutated in place"):
            policy.encode(feats)

    def test_announced_mutation_is_a_clean_miss(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_CHECKS", "1")
        policy, feats = self._policy_and_features()
        h1 = policy.encode(feats)
        layer = policy.sage_layers[0]
        layer.w_self.data[0, 0] += 1.0
        layer.w_self.bump_version()  # the contract: announce the write
        h2 = policy.encode(feats)
        assert h2 is not h1  # version changed -> recomputed, not stale
