"""Tests for layers, optimisers, and serialization."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    GraphSAGELayer,
    Linear,
    Module,
    Sequential,
    mean_aggregation_matrix,
)
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_trains_on_regression(self):
        rng = np.random.default_rng(0)
        true_w = rng.normal(size=(3, 1))
        x = rng.normal(size=(64, 3))
        y = x @ true_w
        layer = Linear(3, 1, rng=1)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            pred = layer(Tensor(x))
            loss = F.mean(F.square(F.sub(pred, Tensor(y))))
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3


class TestSequential:
    def test_activation_between_layers(self):
        seq = Sequential([Linear(4, 8, rng=0), Linear(8, 2, rng=1)])
        out = seq(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_parameters_collected(self):
        seq = Sequential([Linear(4, 8, rng=0), Linear(8, 2, rng=1)])
        assert len(seq.parameters()) == 4


class TestGraphSAGE:
    def test_aggregation_matrix_row_normalised(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        mat = mean_aggregation_matrix(3, src, dst)
        sums = np.asarray(mat.sum(axis=1)).reshape(-1)
        np.testing.assert_allclose(sums, 1.0)

    def test_isolated_node_zero_row(self):
        mat = mean_aggregation_matrix(3, np.array([0]), np.array([1]))
        row = np.asarray(mat[2].todense()).reshape(-1)
        np.testing.assert_allclose(row, 0.0)

    def test_layer_shapes(self):
        mat = mean_aggregation_matrix(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        layer = GraphSAGELayer(5, 7, rng=0)
        out = layer(Tensor(np.ones((4, 5))), mat)
        assert out.shape == (4, 7)

    def test_neighbours_influence_output(self):
        mat = mean_aggregation_matrix(2, np.array([0]), np.array([1]))
        layer = GraphSAGELayer(2, 2, rng=0)
        base = np.array([[1.0, 0.0], [0.0, 1.0]])
        out1 = layer(Tensor(base), mat).data.copy()
        changed = base.copy()
        changed[0, 0] = 5.0  # change node 0 -> affects node 1 via aggregation
        out2 = layer(Tensor(changed), mat).data
        assert not np.allclose(out1[1], out2[1])


class TestModuleState:
    def _module(self):
        return Sequential([Linear(3, 4, rng=0), Linear(4, 2, rng=1)])

    def test_state_dict_roundtrip(self):
        m1, m2 = self._module(), self._module()
        m1.layers[0].weight.data += 1.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(
            m2.layers[0].weight.data, m1.layers[0].weight.data
        )

    def test_state_dict_rejects_mismatch(self):
        m = self._module()
        state = m.state_dict()
        state.pop(sorted(state)[0])
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        m1, m2 = self._module(), self._module()
        m1.layers[1].bias.data += 3.0
        path = str(tmp_path / "ckpt.npz")
        save_state(m1, path)
        load_state(m2, path)
        np.testing.assert_array_equal(m2.layers[1].bias.data, m1.layers[1].bias.data)

    def test_zero_grad_clears_all(self):
        m = self._module()
        out = m(Tensor(np.ones((2, 3))))
        F.sum(out).backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestOptimizers:
    def _quadratic_setup(self):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        return p

    def test_sgd_descends(self):
        p = self._quadratic_setup()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            loss = F.sum(F.square(p))
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, 0.0, atol=1e-3)

    def test_sgd_momentum_descends(self):
        p = self._quadratic_setup()
        opt = SGD([p], lr=0.02, momentum=0.9)
        for _ in range(400):
            loss = F.sum(F.square(p))
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, 0.0, atol=1e-2)

    def test_adam_descends(self):
        p = self._quadratic_setup()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            loss = F.sum(F.square(p))
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, 0.0, atol=1e-2)

    def test_adam_state_roundtrip(self):
        p = Tensor(np.ones(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        F.sum(F.square(p)).backward()
        opt.step()
        state = opt.state_dict()
        opt2 = Adam([p], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2._t == 1

    @pytest.mark.parametrize("cls", [SGD, Adam])
    def test_rejects_bad_lr(self, cls):
        with pytest.raises(ValueError):
            cls([], lr=0.0)

    def test_skips_none_grads(self):
        p = Tensor(np.ones(2), requires_grad=True)
        Adam([p]).step()  # no grad accumulated: must not raise
        np.testing.assert_array_equal(p.data, 1.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Tensor(np.ones(4), requires_grad=True)
        p.grad = np.full(4, 0.1)
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_clips_above_threshold(self):
        p = Tensor(np.ones(4), requires_grad=True)
        p.grad = np.full(4, 10.0)
        clip_grad_norm([p], max_norm=1.0)
        assert np.sqrt((p.grad**2).sum()) == pytest.approx(1.0)

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
