"""Gradient checks for every functional op (finite differences)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_grad(op, x: np.ndarray, atol: float = 1e-5):
    """Compare autodiff gradient of sum(op(x)) against finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    F.sum(out).backward()
    expected = numeric_grad(lambda arr: op(Tensor(arr)).data.sum(), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


RNG = np.random.default_rng(0)


class TestElementwiseGrads:
    def test_add(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: F.add(t, other), RNG.normal(size=(3, 4)))

    def test_sub(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: F.sub(other, t), RNG.normal(size=(3, 4)))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: F.mul(t, other), RNG.normal(size=(3, 4)))

    def test_div(self):
        other = Tensor(RNG.uniform(1.0, 2.0, size=(3, 4)))
        check_grad(lambda t: F.div(t, other), RNG.normal(size=(3, 4)))

    def test_div_denominator(self):
        num = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: F.div(num, t), RNG.uniform(1.0, 2.0, size=(3, 4)))

    def test_relu(self):
        x = RNG.normal(size=(4, 4))
        x[np.abs(x) < 0.1] = 0.5  # stay away from the kink
        check_grad(F.relu, x)

    def test_tanh(self):
        check_grad(F.tanh, RNG.normal(size=(3, 3)))

    def test_sigmoid(self):
        check_grad(F.sigmoid, RNG.normal(size=(3, 3)))

    def test_exp(self):
        check_grad(F.exp, RNG.normal(size=(3, 3)))

    def test_log(self):
        check_grad(F.log, RNG.uniform(0.5, 3.0, size=(3, 3)))

    def test_square(self):
        check_grad(F.square, RNG.normal(size=(3, 3)))

    def test_clip(self):
        x = RNG.normal(size=(4, 4)) * 2
        x[np.abs(np.abs(x) - 1.0) < 0.05] = 0.0  # avoid boundary
        check_grad(lambda t: F.clip(t, -1.0, 1.0), x)

    def test_minimum(self):
        other = Tensor(RNG.normal(size=(4,)))
        x = RNG.normal(size=(4,))
        x[np.abs(x - other.data) < 0.05] += 0.2
        check_grad(lambda t: F.minimum(t, other), x)


class TestMatmulGrads:
    def test_matmul_left(self):
        w = Tensor(RNG.normal(size=(4, 2)))
        check_grad(lambda t: F.matmul(t, w), RNG.normal(size=(3, 4)))

    def test_matmul_right(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: F.matmul(x, t), RNG.normal(size=(4, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            F.matmul(Tensor(np.ones(3)), Tensor(np.ones((3, 2))))


class TestSoftmaxGrads:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(RNG.normal(size=(5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_grad(self):
        weights = Tensor(RNG.normal(size=(3, 5)))
        check_grad(lambda t: F.mul(F.softmax(t), weights), RNG.normal(size=(3, 5)))

    def test_log_softmax_grad(self):
        weights = Tensor(RNG.normal(size=(3, 5)))
        check_grad(lambda t: F.mul(F.log_softmax(t), weights), RNG.normal(size=(3, 5)))

    def test_log_softmax_stability(self):
        out = F.log_softmax(Tensor([[1000.0, 0.0]]))
        assert np.isfinite(out.data).all()


class TestReductionGrads:
    def test_sum_axis(self):
        check_grad(lambda t: F.sum(t, axis=0), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_grad(lambda t: F.sum(t, axis=1, keepdims=True), RNG.normal(size=(3, 4)))

    def test_mean_all(self):
        check_grad(F.mean, RNG.normal(size=(3, 4)))

    def test_mean_axis(self):
        check_grad(lambda t: F.mean(t, axis=1), RNG.normal(size=(3, 4)))


class TestShapingGrads:
    def test_reshape(self):
        check_grad(lambda t: F.reshape(t, (6,)), RNG.normal(size=(2, 3)))

    def test_concat(self):
        other = Tensor(RNG.normal(size=(2, 3)))
        check_grad(lambda t: F.concat([t, other], axis=1), RNG.normal(size=(2, 3)))

    def test_concat_axis0(self):
        other = Tensor(RNG.normal(size=(2, 3)))
        check_grad(lambda t: F.concat([other, t], axis=0), RNG.normal(size=(2, 3)))

    def test_gather_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_grad(lambda t: F.gather_rows(t, idx), RNG.normal(size=(3, 4)))

    def test_take_along_last(self):
        idx = np.array([0, 2, 1])
        check_grad(lambda t: F.take_along_last(t, idx), RNG.normal(size=(3, 4)))

    def test_take_along_last_shape_check(self):
        with pytest.raises(ValueError):
            F.take_along_last(Tensor(np.ones((3, 4))), np.array([0]))


class TestSparseAggregate:
    def test_matches_dense(self):
        import scipy.sparse as sp

        mat = sp.random(5, 5, density=0.4, random_state=0, format="csr")
        x = RNG.normal(size=(5, 3))
        out = F.sparse_mean_aggregate(mat, Tensor(x))
        np.testing.assert_allclose(out.data, mat @ x)

    def test_grad(self):
        import scipy.sparse as sp

        mat = sp.random(4, 4, density=0.5, random_state=1, format="csr")
        check_grad(lambda t: F.sparse_mean_aggregate(mat, t), RNG.normal(size=(4, 3)))
