"""The fused (scratch-buffer) Adam must be bit-for-bit the textbook form."""

import numpy as np

from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


def _reference_adam_step(opt, params, m_list, v_list, t):
    """The pre-PR-2 allocating implementation, op for op."""
    bias1 = 1.0 - opt.beta1**t
    bias2 = 1.0 - opt.beta2**t
    for p, m, v in zip(params, m_list, v_list):
        if p.grad is None:
            continue
        m *= opt.beta1
        m += (1.0 - opt.beta1) * p.grad
        v *= opt.beta2
        v += (1.0 - opt.beta2) * p.grad**2
        p.data -= opt.lr * (m / bias1) / (np.sqrt(v / bias2) + opt.eps)


class TestAdamBitwise:
    def test_matches_reference_over_many_steps(self):
        rng = np.random.default_rng(0)
        shapes = [(14, 32), (32,), (32, 32), (32,), (32, 1), (1,)]
        fused_params = [
            Tensor(rng.normal(size=s), requires_grad=True) for s in shapes
        ]
        ref_params = [
            Tensor(p.data.copy(), requires_grad=True) for p in fused_params
        ]
        fused = Adam(fused_params, lr=3e-4)
        ref_m = [np.zeros_like(p.data) for p in ref_params]
        ref_v = [np.zeros_like(p.data) for p in ref_params]
        for t in range(1, 101):
            for p, q in zip(fused_params, ref_params):
                grad = rng.normal(size=p.data.shape)
                p.grad = grad.copy()
                q.grad = grad.copy()
            fused.step()
            _reference_adam_step(fused, ref_params, ref_m, ref_v, t)
            for p, q in zip(fused_params, ref_params):
                np.testing.assert_array_equal(p.data, q.data)
        for m, rm in zip(fused._m, ref_m):
            np.testing.assert_array_equal(m, rm)
        for v, rv in zip(fused._v, ref_v):
            np.testing.assert_array_equal(v, rv)

    def test_skips_gradless_params(self):
        p = Tensor(np.ones(4), requires_grad=True)
        q = Tensor(np.ones(4), requires_grad=True)
        opt = Adam([p, q], lr=1e-2)
        q.grad = np.ones(4)
        opt.step()
        np.testing.assert_array_equal(p.data, np.ones(4))
        assert not np.array_equal(q.data, np.ones(4))
