"""Tests for the benchmark-suite helpers in benchmarks/common.py."""

import numpy as np
import pytest

from benchmarks.common import (
    calibrated_package,
    get_bench_config,
    median_random_baseline,
    rl_config,
    scaled_bert,
)
from repro.core.baselines import greedy_partition
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.memory import MemoryPlanner
from repro.hardware.package import MCMPackage
from repro.solver.constraints import validate_partition


class TestBenchConfig:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        cfg = get_bench_config()
        assert cfg.scale == 1.0
        assert cfg.n_chips_bert == 8
        assert cfg.bert_layers == 3

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "8")
        cfg = get_bench_config()
        assert cfg.n_chips_bert == 36
        assert cfg.bert_layers == 24
        assert cfg.bert_samples == 800

    def test_rl_config_uses_paper_ppo(self):
        cfg = rl_config()
        assert cfg.ppo.n_rollouts == 20
        assert cfg.ppo.n_minibatches == 4
        assert cfg.ppo.n_epochs == 10


class TestScaledBert:
    def test_default_scale_graph(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        g = scaled_bert(get_bench_config())
        assert 100 < g.n_nodes < 400
        # vocab proportional to hidden: embedding not dominant
        emb = g.param_bytes[[i for i, n in enumerate(g.names) if "word_shard" in n]]
        assert emb.sum() < g.total_param_bytes() * 0.6

    def test_paper_scale_graph(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "8")
        g = scaled_bert(get_bench_config())
        assert g.n_nodes == 2138


class TestCalibratedPackage:
    def test_greedy_fits(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        g = scaled_bert(get_bench_config())
        pkg = calibrated_package(g, 4, headroom=1.3)
        planner = MemoryPlanner(4, capacity_bytes=pkg.chip.sram_bytes)
        assert planner.check(g, greedy_partition(g, 4))


class TestMedianRandomBaseline:
    def test_valid_and_median_quality(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        g = scaled_bert(get_bench_config())
        model = AnalyticalCostModel(MCMPackage(n_chips=4))
        baseline = median_random_baseline(g, 4, model, k=5)
        assert validate_partition(g, baseline, 4).ok
        # the median draw is neither the best nor the worst of the five
        from repro.core.baselines import random_baseline_partition

        draws = [random_baseline_partition(g, 4, seed=100 + i) for i in range(5)]
        tps = sorted(model.evaluate(g, y).throughput for y in draws)
        baseline_tp = model.evaluate(g, baseline).throughput
        assert baseline_tp == pytest.approx(tps[2])
