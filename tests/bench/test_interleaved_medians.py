"""Tests for the interleaved-medians benchmark helper."""

import pytest

from repro.bench.harness import interleaved_medians


class TestInterleavedMedians:
    def test_medians_and_raw_runs(self):
        values = {"a": iter([10.0, 30.0, 20.0]), "b": iter([1.0, 3.0, 2.0])}
        out = interleaved_medians(
            {name: (lambda it=it: next(it)) for name, it in values.items()},
            n_repeats=3,
        )
        assert out["a"]["median"] == 20.0
        assert out["b"]["median"] == 2.0
        assert out["a"]["runs"] == [10.0, 30.0, 20.0]

    def test_round_robin_interleaving(self):
        calls = []
        runs = {
            "x": lambda: calls.append("x") or 1.0,
            "y": lambda: calls.append("y") or 2.0,
        }
        interleaved_medians(runs, n_repeats=2)
        assert calls == ["x", "y", "x", "y"]

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            interleaved_medians({"a": lambda: 1.0}, n_repeats=0)
