"""Tests for the benchmark harness and table rendering."""

import numpy as np
import pytest

from repro.bench.harness import (
    BenchScale,
    MethodCurve,
    bench_scale,
    geomean_curves,
    run_methods,
)
from repro.bench.tables import format_table, samples_to_threshold_table
from repro.core.baselines import SearchResult


class TestBenchScale:
    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        assert bench_scale().scale == 2.0

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().scale == 1.0

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        with pytest.raises(ValueError):
            bench_scale()

    def test_rejects_tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        with pytest.raises(ValueError):
            bench_scale()

    def test_scaling_helpers(self):
        s = BenchScale(scale=0.5)
        assert s.samples(100) == 50
        assert s.samples(4) == 8  # floor
        assert s.samples(100, cap=40) == 40
        assert s.chips(36, cap=36) == 18
        assert s.layers(24, cap=24) == 12


class TestRunMethods:
    def test_runs_each_method_on_fresh_env(self):
        calls = []

        class FakeEnv:
            pass

        def method_a(env, n):
            calls.append(("a", env))
            return SearchResult(np.array([1.0, 2.0]), None, 2.0)

        def method_b(env, n):
            calls.append(("b", env))
            return SearchResult(np.array([0.5, 0.7]), None, 0.7)

        curves = run_methods(
            {"A": method_a, "B": method_b}, FakeEnv, 2, graph_name="g"
        )
        assert [c.method for c in curves] == ["A", "B"]
        assert calls[0][1] is not calls[1][1]
        np.testing.assert_array_equal(curves[0].curve, [1.0, 2.0])
        assert curves[0].final == 2.0


class TestGeomeanCurves:
    def test_geomean(self):
        curves = [
            MethodCurve("m", "g1", np.array([1.0, 4.0])),
            MethodCurve("m", "g2", np.array([4.0, 1.0])),
        ]
        out = geomean_curves(curves, "m")
        np.testing.assert_allclose(out, [2.0, 2.0])

    def test_truncates_to_shortest(self):
        curves = [
            MethodCurve("m", "g1", np.array([1.0, 2.0, 3.0])),
            MethodCurve("m", "g2", np.array([1.0, 2.0])),
        ]
        assert geomean_curves(curves, "m").size == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            geomean_curves([], "missing")


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]

    def test_samples_to_threshold_table(self):
        curves = {
            "RL": np.array([1.0, 1.5, 1.7, 1.9]),
            "Random": np.array([1.0, 1.2, 1.5, 1.6]),
        }
        text = samples_to_threshold_table(curves, [1.5, 1.8], "RL")
        assert "N.A." in text          # Random never reaches 1.8
        assert "(1.00x)" in text       # RL relative to itself
        # Random reaches 1.5 at sample 3, RL at sample 2 -> 0.67x
        assert "3 (0.67x)" in text

    def test_reference_must_exist(self):
        with pytest.raises(ValueError):
            samples_to_threshold_table({"A": np.array([1.0])}, [1.0], "B")
