"""Test package."""
