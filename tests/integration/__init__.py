"""Test package."""
