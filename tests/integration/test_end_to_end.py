"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro import (
    AnalyticalCostModel,
    MCMPackage,
    PartitionEnvironment,
    PipelineSimulator,
    RandomSearch,
    RLPartitioner,
    RLPartitionerConfig,
    SimulatedAnnealing,
    build_bert,
    build_dataset,
    fine_tune_search,
    greedy_partition,
    pretrain,
    select_checkpoint,
    validate_partition,
    zero_shot_search,
)
from repro.core.pretrain import PretrainConfig
from repro.hardware.chip import ChipSpec
from repro.rl.ppo import PPOConfig


def _fast_config():
    return RLPartitionerConfig(
        hidden=16,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=5, n_minibatches=1, n_epochs=2),
    )


class TestSearchPipeline:
    def test_rl_vs_baselines_on_zoo_graph(self):
        """All methods produce valid partitions and positive improvements."""
        ds = build_dataset()
        g = ds.test[0]
        package = MCMPackage(n_chips=4)
        model = AnalyticalCostModel(package)

        results = {}
        env = PartitionEnvironment(g, model, 4)
        results["rl"] = RLPartitioner(4, config=_fast_config(), rng=0).search(env, 15)
        env = PartitionEnvironment(g, model, 4)
        results["random"] = RandomSearch(rng=0).search(env, 15)
        env = PartitionEnvironment(g, model, 4)
        results["sa"] = SimulatedAnnealing(rng=0).search(env, 15)

        for name, result in results.items():
            assert result.best_improvement > 0.5, name
            assert validate_partition(g, result.best_assignment, 4).ok, name

    def test_scaled_bert_on_simulator(self):
        """A scaled BERT runs end to end on the pipeline simulator."""
        g = build_bert(layers=2, hidden=128, heads=4, seq=32, target_nodes=None)
        package = MCMPackage(n_chips=4, chip=ChipSpec(sram_bytes=2**30))
        sim = PipelineSimulator(package)
        env = PartitionEnvironment(g, sim, 4)
        result = RandomSearch(rng=0).search(env, 6)
        assert result.best_improvement > 0
        assert validate_partition(g, result.best_assignment, 4).ok

    def test_greedy_baseline_valid_on_full_bert(self):
        g = build_bert()
        y = greedy_partition(g, 36)
        assert validate_partition(g, y, 36).ok


class TestTransferPipeline:
    def test_pretrain_select_deploy(self):
        """The full Figure 4 workflow at miniature scale."""
        ds = build_dataset()
        train = list(ds.train[:3])
        val = list(ds.validation[:1])
        test_graph = ds.test[0]
        package = MCMPackage(n_chips=4)

        def env_factory(g):
            return PartitionEnvironment(g, AnalyticalCostModel(package), 4)

        partitioner = RLPartitioner(4, config=_fast_config(), rng=0)
        ckpts = pretrain(
            partitioner, train, env_factory,
            PretrainConfig(total_samples=20, n_checkpoints=2, samples_per_graph=5),
        )
        assert len(ckpts) == 2
        best = select_checkpoint(ckpts, partitioner, val, env_factory, zero_shot_samples=2)

        env = env_factory(test_graph)
        zs = zero_shot_search(partitioner, best.state, env, 4)
        assert zs.best_improvement > 0

        env = env_factory(test_graph)
        ft = fine_tune_search(partitioner, best.state, env, 10)
        assert ft.best_improvement > 0


class TestCostModelAgreement:
    def test_analytical_correlates_with_simulator(self):
        """Fig. 7 property at small scale: strong positive correlation."""
        g = build_bert(layers=2, hidden=128, heads=4, seq=64, target_nodes=None)
        package = MCMPackage(n_chips=4, chip=ChipSpec(sram_bytes=2**30))
        analytical = AnalyticalCostModel(package)
        simulator = PipelineSimulator(package)

        rng = np.random.default_rng(0)
        from repro.solver.strategies import sample_partition

        probs = np.full((g.n_nodes, 4), 0.25)
        predicted, measured = [], []
        for _ in range(25):
            y = sample_partition(g, probs, 4, rng=rng)
            a = analytical.evaluate(g, y)
            s = simulator.evaluate(g, y)
            if a.valid and s.valid:
                predicted.append(a.runtime_us)
                measured.append(s.runtime_us)
        assert len(predicted) >= 15
        r = np.corrcoef(predicted, measured)[0, 1]
        assert r > 0.6
