"""Tests for GraphBuilder."""

import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType


class TestAddNode:
    def test_sequential_ids(self):
        b = GraphBuilder()
        assert b.add_node("a", OpType.INPUT) == 0
        assert b.add_node("b", OpType.RELU) == 1
        assert b.n_nodes == 2

    def test_inputs_create_edges(self):
        b = GraphBuilder()
        a = b.add_node("a", OpType.INPUT)
        c = b.add_node("c", OpType.ADD, inputs=[a])
        g = b.build()
        assert g.n_edges == 1
        assert g.src[0] == a and g.dst[0] == c

    def test_rejects_negative_costs(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_node("a", OpType.INPUT, compute_us=-1.0)


class TestAddEdge:
    def test_duplicate_edges_ignored(self):
        b = GraphBuilder()
        a = b.add_node("a", OpType.INPUT)
        c = b.add_node("c", OpType.RELU)
        b.add_edge(a, c)
        b.add_edge(a, c)
        assert b.build().n_edges == 1

    def test_rejects_unknown_nodes(self):
        b = GraphBuilder()
        b.add_node("a", OpType.INPUT)
        with pytest.raises(ValueError):
            b.add_edge(0, 7)
        with pytest.raises(ValueError):
            b.add_edge(7, 0)

    def test_rejects_self_loop(self):
        b = GraphBuilder()
        a = b.add_node("a", OpType.INPUT)
        with pytest.raises(ValueError):
            b.add_edge(a, a)


class TestAddChain:
    def test_chain_links_sequentially(self):
        b = GraphBuilder()
        inp = b.add_node("in", OpType.INPUT, output_bytes=8.0)
        ids = b.add_chain(
            [
                ("m", OpType.MATMUL, 5.0, 16.0, 64.0),
                ("r", OpType.RELU, 1.0, 16.0),
            ],
            inputs=[inp],
        )
        g = b.build()
        assert ids == [1, 2]
        assert set(zip(g.src.tolist(), g.dst.tolist())) == {(0, 1), (1, 2)}
        assert g.param_bytes[1] == 64.0

    def test_chain_without_inputs(self):
        b = GraphBuilder()
        ids = b.add_chain([("a", OpType.INPUT, 0.0, 8.0), ("b", OpType.RELU, 1.0, 8.0)])
        g = b.build()
        assert len(ids) == 2 and g.n_edges == 1


class TestBuild:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().build()

    def test_build_preserves_name(self):
        b = GraphBuilder("myname")
        b.add_node("a", OpType.INPUT)
        assert b.build().name == "myname"
