"""Tests for graph save/load."""

import numpy as np
import pytest

from repro.graphs.serialization import load_graph, save_graph
from repro.graphs.zoo import build_lstm
from tests.conftest import random_dag


class TestRoundtrip:
    def test_random_dag_roundtrip(self, tmp_path):
        g = random_dag(7, 25)
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.name == g.name
        assert loaded.names == g.names
        np.testing.assert_array_equal(loaded.op_types, g.op_types)
        np.testing.assert_allclose(loaded.compute_us, g.compute_us)
        np.testing.assert_allclose(loaded.output_bytes, g.output_bytes)
        np.testing.assert_allclose(loaded.param_bytes, g.param_bytes)
        np.testing.assert_array_equal(loaded.src, g.src)
        np.testing.assert_array_equal(loaded.dst, g.dst)

    def test_zoo_graph_roundtrip(self, tmp_path):
        g = build_lstm(steps=3)
        path = str(tmp_path / "lstm.npz")
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.n_nodes == g.n_nodes
        assert loaded.total_compute_us() == pytest.approx(g.total_compute_us())

    def test_loaded_graph_is_usable(self, tmp_path):
        from repro.solver import validate_partition
        from repro.solver.fallback import contiguous_partition

        g = random_dag(3, 20)
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        loaded = load_graph(path)
        y = contiguous_partition(loaded, 3)
        assert validate_partition(loaded, y, 3).ok

    def test_version_check(self, tmp_path):
        g = random_dag(1, 5)
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)

    def test_creates_directories(self, tmp_path):
        g = random_dag(2, 5)
        path = str(tmp_path / "nested" / "dir" / "g.npz")
        save_graph(g, path)
        assert load_graph(path).n_nodes == 5
