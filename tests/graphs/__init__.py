"""Test package."""
