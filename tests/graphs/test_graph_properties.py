"""Property-based tests (hypothesis) for graph utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import random_dag


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(2, 40))
def test_depth_monotone_along_edges(seed, n_nodes):
    g = random_dag(seed, n_nodes)
    depth = g.depth()
    assert np.all(depth[g.dst] > depth[g.src])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(2, 40))
def test_critical_path_dominates_own_compute(seed, n_nodes):
    g = random_dag(seed, n_nodes)
    cp = g.critical_path_us()
    assert np.all(cp >= g.compute_us - 1e-12)
    # critical path is monotone along edges too
    assert np.all(cp[g.dst] > cp[g.src])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(2, 40))
def test_compute_position_is_a_cdf(seed, n_nodes):
    g = random_dag(seed, n_nodes)
    pos = g.compute_position()
    assert pos.max() <= 1.0 + 1e-12
    assert pos.min() > 0.0
    # positions along the topological order are non-decreasing
    order = g.topological_order()
    assert np.all(np.diff(pos[order]) >= -1e-12)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(2, 30))
def test_adjacency_roundtrip(seed, n_nodes):
    g = random_dag(seed, n_nodes)
    # successors/predecessors must agree with the edge list
    edges = set(zip(g.src.tolist(), g.dst.tolist()))
    rebuilt = set()
    for u in range(n_nodes):
        for v in g.successors(u):
            rebuilt.add((u, int(v)))
    assert rebuilt == edges
    rebuilt_back = set()
    for v in range(n_nodes):
        for u in g.predecessors(v):
            rebuilt_back.add((int(u), v))
    assert rebuilt_back == edges


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(2, 30))
def test_degree_sums_match_edge_count(seed, n_nodes):
    g = random_dag(seed, n_nodes)
    assert g.in_degree().sum() == g.n_edges
    assert g.out_degree().sum() == g.n_edges
