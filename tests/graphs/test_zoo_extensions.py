"""Tests for the extension zoo families (UNet, MobileNet, decoder)."""

import numpy as np
import pytest

from repro.graphs.ops import OpType
from repro.graphs.zoo import build_decoder, build_mobilenet, build_unet
from repro.solver import validate_partition
from repro.solver.fallback import contiguous_partition
from repro.solver.strategies import sample_partition


class TestUNet:
    def test_skip_connections_exist(self):
        g = build_unet(depth=3)
        # concats take two inputs: the upsample path and the encoder skip
        concats = np.flatnonzero(g.op_types == int(OpType.CONCAT))
        assert concats.size == 3
        assert np.all(g.in_degree()[concats] == 2)

    def test_skips_span_the_bottleneck(self):
        """Skip edges cross a long stretch of the graph (the hard case)."""
        g = build_unet(depth=3)
        position = np.argsort(np.argsort(g.topological_order()))
        spans = position[g.dst] - position[g.src]
        assert spans.max() >= g.n_nodes // 3

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            build_unet(depth=0)
        with pytest.raises(ValueError):
            build_unet(depth=8, image_hw=16)

    def test_partitionable_despite_long_skips(self):
        g = build_unet(depth=3)
        for c in (2, 3):
            y = contiguous_partition(g, c)
            assert validate_partition(g, y, c).ok
        probs = np.full((g.n_nodes, 2), 0.5)
        y = sample_partition(g, probs, 2, rng=0)
        assert validate_partition(g, y, 2).ok

    def test_long_skips_limit_safe_cuts(self):
        """With many chips, safe contiguous cuts are scarce: the heuristic
        may use fewer chips than requested rather than break a skip edge."""
        g = build_unet(depth=4, image_hw=64)
        y = contiguous_partition(g, 8)
        assert validate_partition(g, y, 8).ok  # valid even if < 8 chips used


class TestMobileNet:
    def test_depthwise_blocks(self):
        g = build_mobilenet(blocks=6)
        dw = int((g.op_types == int(OpType.DEPTHWISE_CONV)).sum())
        assert dw == 6

    def test_node_count_scales(self):
        assert build_mobilenet(blocks=10).n_nodes > build_mobilenet(blocks=4).n_nodes

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            build_mobilenet(blocks=0)


class TestDecoder:
    def test_structure(self):
        g = build_decoder(layers=2, hidden=128, heads=4, seq=64)
        # causal mask is a replicable constant
        assert np.any(g.is_replicable())
        # per-layer residuals: 2 per layer
        adds = [n for n in g.names if n.endswith("/residual")]
        assert len(adds) == 4

    def test_default_vocab_ratio(self):
        g = build_decoder(layers=1, hidden=128, heads=4, seq=32)
        emb = [i for i, n in enumerate(g.names) if n == "embeddings/token"][0]
        assert g.param_bytes[emb] == pytest.approx(30 * 128 * 128 * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_decoder(layers=0)
        with pytest.raises(ValueError):
            build_decoder(hidden=130, heads=4)

    def test_partitionable(self):
        g = build_decoder(layers=2, hidden=128, heads=4, seq=64)
        probs = np.full((g.n_nodes, 4), 0.25)
        y = sample_partition(g, probs, 4, rng=0)
        assert validate_partition(g, y, 4).ok

    def test_policy_transfers_to_decoder(self):
        """An encoder-pretrained policy evaluates decoder graphs (shapes)."""
        from repro.rl.features import featurize
        from repro.rl.policy import PartitionPolicy

        policy = PartitionPolicy(n_chips=4, hidden=16, n_sage_layers=2, rng=0)
        g = build_decoder(layers=1, hidden=128, heads=4, seq=32)
        out = policy.forward_batch(featurize(g), np.zeros((1, g.n_nodes), dtype=int))
        assert out.probs.shape == (1, g.n_nodes, 4)
