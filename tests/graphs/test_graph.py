"""Tests for the CompGraph IR."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from tests.conftest import random_dag


class TestBasicProperties:
    def test_counts(self, diamond_graph):
        assert diamond_graph.n_nodes == 5
        assert diamond_graph.n_edges == 5
        assert len(diamond_graph) == 5

    def test_adjacency(self, diamond_graph):
        assert set(diamond_graph.successors(0).tolist()) == {1, 2}
        assert set(diamond_graph.predecessors(3).tolist()) == {1, 2}
        assert diamond_graph.predecessors(0).size == 0
        assert diamond_graph.successors(4).size == 0

    def test_degrees(self, diamond_graph):
        np.testing.assert_array_equal(diamond_graph.in_degree(), [0, 1, 1, 2, 1])
        np.testing.assert_array_equal(diamond_graph.out_degree(), [2, 1, 1, 1, 0])

    def test_totals(self, diamond_graph):
        assert diamond_graph.total_compute_us() == pytest.approx(18.5)
        assert diamond_graph.total_param_bytes() == pytest.approx(1000.0)

    def test_edge_bytes_are_producer_output(self, diamond_graph):
        eb = diamond_graph.edge_bytes()
        # every edge out of node 0 carries node 0's output bytes
        for k in range(diamond_graph.n_edges):
            assert eb[k] == diamond_graph.output_bytes[diamond_graph.src[k]]


class TestTopology:
    def test_topological_order_respects_edges(self, diamond_graph):
        order = diamond_graph.topological_order()
        pos = np.empty(diamond_graph.n_nodes, dtype=int)
        pos[order] = np.arange(diamond_graph.n_nodes)
        assert np.all(pos[diamond_graph.src] < pos[diamond_graph.dst])

    def test_depth(self, diamond_graph):
        np.testing.assert_array_equal(diamond_graph.depth(), [0, 1, 1, 2, 3])

    def test_chain_depth(self, chain_graph):
        np.testing.assert_array_equal(chain_graph.depth(), np.arange(10))

    def test_critical_path_on_chain(self, chain_graph):
        cp = chain_graph.critical_path_us()
        expected = np.cumsum(chain_graph.compute_us)
        np.testing.assert_allclose(cp, expected)

    def test_cycle_detection(self):
        with pytest.raises(ValueError, match="cycle"):
            CompGraph(
                names=("a", "b"),
                op_types=np.array([0, 0]),
                compute_us=np.zeros(2),
                output_bytes=np.zeros(2),
                param_bytes=np.zeros(2),
                src=np.array([0, 1]),
                dst=np.array([1, 0]),
            )

    def test_random_topological_order_is_linear_extension(self):
        g = random_dag(3, 30)
        rng = np.random.default_rng(0)
        for _ in range(5):
            order = g.random_topological_order(rng)
            pos = np.empty(g.n_nodes, dtype=int)
            pos[order] = np.arange(g.n_nodes)
            assert np.all(pos[g.src] < pos[g.dst])

    def test_random_topological_orders_differ(self):
        g = random_dag(4, 30, edge_prob=0.05)
        rng = np.random.default_rng(0)
        orders = {tuple(g.random_topological_order(rng)) for _ in range(5)}
        assert len(orders) > 1

    def test_compute_position_monotone_along_chain(self, chain_graph):
        pos = chain_graph.compute_position()
        assert np.all(np.diff(pos[chain_graph.topological_order()]) >= 0)
        assert pos.max() == pytest.approx(1.0)


class TestValidation:
    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            CompGraph(
                names=("a",),
                op_types=np.array([0, 0]),
                compute_us=np.zeros(1),
                output_bytes=np.zeros(1),
                param_bytes=np.zeros(1),
                src=np.zeros(0, dtype=int),
                dst=np.zeros(0, dtype=int),
            )

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            CompGraph(
                names=("a", "b"),
                op_types=np.zeros(2, dtype=int),
                compute_us=np.zeros(2),
                output_bytes=np.zeros(2),
                param_bytes=np.zeros(2),
                src=np.array([0]),
                dst=np.array([5]),
            )

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            CompGraph(
                names=("a",),
                op_types=np.zeros(1, dtype=int),
                compute_us=np.array([-1.0]),
                output_bytes=np.zeros(1),
                param_bytes=np.zeros(1),
                src=np.zeros(0, dtype=int),
                dst=np.zeros(0, dtype=int),
            )

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            CompGraph(
                names=("a", "b"),
                op_types=np.zeros(2, dtype=int),
                compute_us=np.zeros(2),
                output_bytes=np.zeros(2),
                param_bytes=np.zeros(2),
                src=np.array([1]),
                dst=np.array([1]),
            )


class TestInterop:
    def test_to_networkx_roundtrip_structure(self, diamond_graph):
        g = diamond_graph.to_networkx()
        assert g.number_of_nodes() == diamond_graph.n_nodes
        assert g.number_of_edges() == diamond_graph.n_edges
        import networkx as nx

        assert nx.is_directed_acyclic_graph(g)

    def test_summary_mentions_counts(self, diamond_graph):
        text = diamond_graph.summary()
        assert "5 nodes" in text

    def test_replicable_mask(self):
        b = GraphBuilder("g")
        b.add_node("const", OpType.CONSTANT, output_bytes=4.0)
        b.add_node("x", OpType.INPUT, output_bytes=4.0)
        g = b.build()
        np.testing.assert_array_equal(g.is_replicable(), [True, False])
