"""Tests for the model-zoo graph families."""

import numpy as np
import pytest

from repro.graphs.ops import OpType
from repro.graphs.zoo import (
    build_autoencoder,
    build_bert,
    build_cnn,
    build_dataset,
    build_gru,
    build_inception_cnn,
    build_lstm,
    build_mlp,
    build_residual_cnn,
)
from repro.graphs.zoo.transformer import base_node_count, build_transformer


def _assert_well_formed(g):
    """Zoo invariants: DAG, one component-ish, sane costs."""
    g.topological_order()  # raises on cycles
    assert g.total_compute_us() > 0
    assert np.all(g.output_bytes >= 0)
    # every non-source node has at least one input, except declared sources
    indeg = g.in_degree()
    sources = np.flatnonzero(indeg == 0)
    src_types = {int(g.op_types[s]) for s in sources}
    assert src_types <= {
        int(OpType.INPUT), int(OpType.CONSTANT), int(OpType.EMBEDDING)
    }


class TestCNNFamilies:
    def test_plain_cnn(self):
        g = build_cnn(depth=6)
        _assert_well_formed(g)
        assert 15 <= g.n_nodes <= 40

    def test_depth_scales_nodes(self):
        assert build_cnn(depth=12).n_nodes > build_cnn(depth=4).n_nodes

    def test_residual_cnn_has_branches(self):
        g = build_residual_cnn(stages=2, blocks_per_stage=2)
        _assert_well_formed(g)
        # residual adds have in-degree 2
        adds = np.flatnonzero(g.op_types == int(OpType.ADD))
        assert np.all(g.in_degree()[adds] == 2)

    def test_inception_concat_fanin(self):
        g = build_inception_cnn(blocks=2, branches=3)
        _assert_well_formed(g)
        concats = np.flatnonzero(g.op_types == int(OpType.CONCAT))
        assert np.all(g.in_degree()[concats] == 3)

    @pytest.mark.parametrize("builder", [build_cnn, build_residual_cnn, build_inception_cnn])
    def test_rejects_bad_depth(self, builder):
        with pytest.raises(ValueError):
            builder(0)


class TestRNNFamilies:
    def test_lstm_node_count_scales_with_steps(self):
        g4, g8 = build_lstm(steps=4), build_lstm(steps=8)
        _assert_well_formed(g4)
        assert g8.n_nodes - g4.n_nodes == 4 * (g8.n_nodes - build_lstm(steps=7).n_nodes)

    def test_lstm_has_recurrence(self):
        g = build_lstm(steps=3)
        # hidden state chains across steps: depth grows linearly
        assert g.depth().max() >= 3 * 3

    def test_gru(self):
        g = build_gru(steps=5)
        _assert_well_formed(g)
        assert g.n_nodes > 50

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            build_lstm(steps=0)
        with pytest.raises(ValueError):
            build_gru(steps=0)


class TestMLPFamilies:
    def test_mlp_layer_count(self):
        g = build_mlp(hidden_dims=(64, 64))
        _assert_well_formed(g)
        matmuls = int((g.op_types == int(OpType.MATMUL)).sum())
        assert matmuls == 3  # 2 hidden + 1 head

    def test_autoencoder_symmetry(self):
        g = build_autoencoder(depth=3)
        _assert_well_formed(g)

    def test_rejects_empty_dims(self):
        with pytest.raises(ValueError):
            build_mlp(hidden_dims=())


class TestTransformer:
    def test_bert_matches_paper_node_count(self):
        g = build_bert()
        assert g.n_nodes == 2138  # paper Section 5.1

    def test_bert_parameter_count_near_paper(self):
        g = build_bert()
        params = g.total_param_bytes() / 2  # bf16 -> parameter count
        assert 320e6 < params < 360e6  # paper: ~340M

    def test_base_node_count_formula(self):
        for layers, heads, shards in [(2, 4, 1), (4, 8, 8), (24, 16, 8)]:
            g = build_transformer(
                layers=layers, hidden=64 * heads, heads=heads, seq=32,
                target_nodes=None, emb_shards=shards,
            )
            assert g.n_nodes == base_node_count(layers, heads, shards)

    def test_target_nodes_exact(self):
        base = base_node_count(2, 4, 2)
        g = build_transformer(
            layers=2, hidden=64, heads=4, seq=32, target_nodes=base + 17,
            emb_shards=2,
        )
        assert g.n_nodes == base + 17

    def test_target_below_base_rejected(self):
        with pytest.raises(ValueError):
            build_transformer(layers=2, hidden=64, heads=4, target_nodes=10)

    def test_attention_mask_is_replicable_constant(self):
        g = build_bert(layers=2, hidden=128, heads=4, seq=32, target_nodes=None)
        consts = np.flatnonzero(g.is_replicable())
        assert consts.size == 1
        assert "mask" in g.names[consts[0]]

    def test_head_fanout(self):
        g = build_transformer(layers=1, hidden=64, heads=4, seq=16, target_nodes=None)
        concats = np.flatnonzero(g.op_types == int(OpType.CONCAT))
        assert np.any(g.in_degree()[concats] == 4)

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            build_transformer(layers=1, hidden=65, heads=4)


class TestDataset:
    def test_split_sizes_match_paper(self):
        ds = build_dataset()
        assert len(ds.train) == 66
        assert len(ds.validation) == 5
        assert len(ds.test) == 16

    def test_deterministic(self):
        a, b = build_dataset(seed=3), build_dataset(seed=3)
        assert [g.name for g in a.all_graphs] == [g.name for g in b.all_graphs]

    def test_seeds_differ(self):
        a, b = build_dataset(seed=1), build_dataset(seed=2)
        assert [g.name for g in a.train] != [g.name for g in b.train]

    def test_node_range_tens_to_hundreds(self):
        ds = build_dataset()
        sizes = [g.n_nodes for g in ds.all_graphs]
        assert min(sizes) >= 10
        assert max(sizes) <= 1000

    def test_no_attention_in_dataset(self):
        from repro.graphs.ops import OpType

        ds = build_dataset()
        for g in ds.all_graphs:
            assert not np.any(g.op_types == int(OpType.EINSUM))

    def test_rejects_bad_split(self):
        with pytest.raises(ValueError):
            build_dataset(n_total=10, n_train=8, n_validation=2)

    def test_all_graphs_well_formed(self):
        ds = build_dataset()
        for g in ds.all_graphs:
            _assert_well_formed(g)
