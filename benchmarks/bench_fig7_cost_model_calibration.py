"""Figure 7: analytical cost model vs "real hardware" calibration.

Reproduces the paper's Section 5.4 study: draw random solver-valid BERT
partitions, evaluate each on the analytical model and on the pipeline
simulator, and compare normalised predicted vs measured runtime.

Paper findings to reproduce:
  1. a fraction of statically valid partitions fail on hardware
     (paper: 13.5% — the dynamic memory constraint),
  2. some low-predicted-runtime partitions perform poorly on hardware
     (false positives),
  3. a strong positive correlation overall (paper: Pearson R = 0.91).
"""

import numpy as np

from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MemoryPlanner
from repro.hardware.noise import PerturbationModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.solver.strategies import sample_partition, topo_prior

from .common import get_bench_config, scaled_bert, write_result

#: fraction of statically valid partitions the paper found invalid on
#: hardware; the platform's SRAM is calibrated so the memory constraint
#: lands in this regime.
PAPER_INVALID_RATE = 0.135


def _draw(graph, n_chips, rng):
    """One random partition across the quality spectrum.

    The paper's 2000 samples come from its production sampling stack and
    span a range of balance quality; we reproduce that spread by drawing
    through the solver with priors of varying sharpness (sharp = balanced
    contiguous, flat = scattered).
    """
    conc = float(rng.uniform(0.5, 6.0))
    probs = topo_prior(graph, n_chips, concentration=conc)
    return sample_partition(graph, probs, n_chips, rng=rng)


def _run_fig7():
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    n_chips = cfg.n_chips_bert

    # Draw the full sample set first, then calibrate chip SRAM at the
    # quantile that reproduces the paper's hardware-failure regime (their
    # platform's SRAM is fixed; 13.5% is where BERT landed on it).  The
    # calibration only sets *where* the memory constraint binds; which
    # partitions fail and how runtimes correlate is emergent.
    rng = np.random.default_rng(0)
    samples = [_draw(graph, n_chips, rng) for _ in range(cfg.calibration_samples)]
    probe = MemoryPlanner(n_chips, capacity_bytes=2**62)
    peaks = np.array([probe.plan(graph, y).peak_bytes.max() for y in samples])
    # Peak distributions have heavy atoms (similar partitions share peaks),
    # so pick the candidate capacity whose exceedance rate is closest to
    # the paper's, rather than a raw quantile.
    candidates = np.unique(peaks)
    rates = np.array([(peaks > c).mean() for c in candidates])
    capacity = float(candidates[np.argmin(np.abs(rates - PAPER_INVALID_RATE))])
    package = MCMPackage(n_chips=n_chips, chip=ChipSpec(sram_bytes=capacity))

    analytical = AnalyticalCostModel(package)
    simulator = PipelineSimulator(
        package,
        perturbation=PerturbationModel(
            op_amplitude=0.2, chip_amplitude=0.08, category_amplitude=0.12
        ),
        op_overhead_us=2.0,
    )

    predicted, measured = [], []
    n_invalid = 0
    for y in samples:
        a = analytical.evaluate(graph, y)
        s = simulator.evaluate(graph, y)
        if not s.valid:
            n_invalid += 1
            continue
        predicted.append(a.runtime_us)
        measured.append(s.runtime_us)

    predicted = np.array(predicted)
    measured = np.array(measured)
    pearson = float(np.corrcoef(predicted, measured)[0, 1])
    invalid_rate = n_invalid / cfg.calibration_samples
    return cfg, graph, predicted, measured, pearson, invalid_rate


def bench_fig7_cost_model_calibration(benchmark):
    """Regenerate the Figure 7 calibration study."""
    cfg, graph, predicted, measured, pearson, invalid_rate = benchmark.pedantic(
        _run_fig7, rounds=1, iterations=1
    )

    norm_pred = predicted / predicted.min()
    norm_meas = measured / measured.min()
    # A coarse text rendition of the scatter: deciles of predicted runtime
    # vs the mean measured runtime in each bin.
    order = np.argsort(norm_pred)
    bins = np.array_split(order, 10)
    lines = [
        "Figure 7 (reproduced): analytical vs measured runtime on BERT",
        f"graph: {graph.name} ({graph.n_nodes} nodes), chips: {cfg.n_chips_bert}, "
        f"samples: {cfg.calibration_samples}, scale: {cfg.scale}",
        "",
        f"invalid on hardware: {invalid_rate:.1%}   (paper: 13.5%)",
        f"Pearson R:           {pearson:.3f}   (paper: 0.91)",
        "",
        "predicted-runtime decile -> mean normalised measured runtime:",
    ]
    for k, idx in enumerate(bins):
        if idx.size:
            lines.append(
                f"  d{k}: pred {norm_pred[idx].mean():6.2f} -> meas "
                f"{norm_meas[idx].mean():6.2f}"
            )
    write_result("fig7_cost_model_calibration", "\n".join(lines))

    # Shape assertions (paper Section 5.4).
    assert pearson > 0.6, pearson                     # strong correlation
    assert pearson < 0.995, pearson                   # ... but not perfect
    assert 0.02 < invalid_rate < 0.4, invalid_rate    # H(G, f) binds sometimes
    assert predicted.size >= cfg.calibration_samples * 0.4
