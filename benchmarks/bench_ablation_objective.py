"""Ablation: throughput vs latency objective.

The paper (Section 5.1): "our framework can easily re-target a latency
metric."  This bench runs the same search under both objectives and shows
they steer toward different partitions — throughput rewards deep pipelines,
latency rewards few chips and few transfers.
"""

import numpy as np

from repro.core.baselines import RandomSearch

from .common import analytical_env, get_bench_config, scaled_bert, write_result


def _run_objectives():
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    n = cfg.bert_samples

    results = {}
    for objective in ("throughput", "latency"):
        env = analytical_env(graph, cfg.n_chips_bert)
        env_obj = type(env)(
            graph, env.cost_model, cfg.n_chips_bert, objective=objective
        )
        results[objective] = (
            env_obj,
            RandomSearch(rng=0).search(env_obj, n),
        )
    return cfg, graph, results


def bench_ablation_objective(benchmark):
    """Search under both objectives; record where the optima diverge."""
    cfg, graph, results = benchmark.pedantic(_run_objectives, rounds=1, iterations=1)

    lines = [
        "Ablation (reproduced): optimisation objective re-targeting",
        f"graph: {graph.name}, chips: {cfg.n_chips_bert}, "
        f"budget: {cfg.bert_samples}, scale: {cfg.scale}",
        "",
        f"{'objective':<12} {'best impr':>10} {'chips used':>11}",
    ]
    used = {}
    for objective, (env, result) in results.items():
        chips = len(np.unique(result.best_assignment))
        used[objective] = chips
        lines.append(
            f"{objective:<12} {result.best_improvement:>9.3f}x {chips:>11}"
        )
    write_result("ablation_objective", "\n".join(lines))

    # Both objectives must find improvements over the greedy baseline's
    # metric value; latency search tends toward fewer chips.
    for objective, (env, result) in results.items():
        assert result.best_improvement > 0, objective
    assert used["latency"] <= used["throughput"]
