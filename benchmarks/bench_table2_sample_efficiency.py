"""Table 2: samples needed to reach fixed improvement levels (test set).

Reproduces the paper's Table 2: for each method, the number of samples to
reach given geomean-improvement thresholds, with the reduction factor
relative to RL-from-scratch in parentheses (RL = 1.00x by construction).

Paper shape to reproduce: RL Finetuning needs the fewest samples at every
threshold; RL Zeroshot is sample-efficient at the lowest threshold but
degrades at the highest; Random/SA trail RL at high thresholds.
"""

import numpy as np

from repro.bench.tables import samples_to_threshold_table

from .bench_fig5_test_set import _run_fig5
from .common import write_result


def bench_table2_sample_efficiency(benchmark):
    """Regenerate Table 2 from the Figure 5 series."""
    cfg, series = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)

    # The paper uses absolute thresholds (1.60/1.70/1.80x) tuned to its
    # platform; we derive the same ladder from the strongest learned arm's
    # plateau so the table is meaningful at any bench scale.
    anchor = max(series[k][-1] for k in ("RL", "RL Finetuning", "RL Zeroshot"))
    thresholds = [round(anchor * f, 3) for f in (0.90, 0.95, 1.00)]

    table = samples_to_threshold_table(
        {name: curve for name, curve in series.items()},
        thresholds,
        reference_method="RL",
        title=(
            "Table 2 (reproduced): samples to reach geomean improvement "
            f"thresholds (scale {cfg.scale})"
        ),
    )
    write_result("table2_sample_efficiency", table)

    # Shape assertion: at least one transfer arm reaches the top learned
    # threshold within budget (paper: fine-tuning reduces samples by up to
    # 1.93x; zero-shot by 1.68x at low thresholds).
    def to_reach(curve, t):
        hits = np.flatnonzero(curve >= t)
        return int(hits[0]) + 1 if hits.size else None

    ft = to_reach(series["RL Finetuning"], thresholds[0])
    zs = to_reach(series["RL Zeroshot"], thresholds[0])
    assert ft is not None or zs is not None, (thresholds, ft, zs)
