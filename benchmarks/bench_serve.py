"""Serving-layer latency benchmark: cold / warm / cached request classes.

The serving pitch is operational: the expensive transferability machinery
(policy build, checkpoint load, zero-shot search) is paid once per
checkpoint and once per distinct request, after which repeated requests are
a fingerprint lookup.  This bench measures the three request classes the
``/metrics`` endpoint distinguishes:

* **cold** — first request on a fresh service: partitioner build +
  checkpoint load from the registry + environment baseline + zero-shot
  search;
* **warm** — cache miss on a live service: the partitioner and weights are
  already resident, only the per-graph work remains;
* **cached** — repeat request: fingerprint + LRU lookup, no policy/solver.

It reports p50/p95/p99 latency per class, sustained requests/sec for an
all-hit stream and an all-miss stream, and pins the core guarantees in the
JSON: the cached reply is bit-identical to the cold one and >= 10x faster
(the tier-1 suite pins the same bound in
``tests/serve/test_service.py::test_cached_request_is_10x_faster_and_identical``).

A **coalescing** sweep measures the admission-batching hot path: all-miss
sustained req/s at 1/4/8 concurrent clients with cross-connection
coalescing off vs on (``batch_window_ms``), on a 2-worker service — the
win is the replay pool's fork/broadcast/teardown amortized across batch
members.  A **precision** section compares the int8 inference-only
deployment's cold p50 (checkpoint install + weight quantization) against
float32, with the installed weights' worst-case dequantization error.

Two reliability rows ride along:

* **degraded** — every checkpoint load fails (injected registry fault):
  p50/p95 of the greedy-heuristic fallback path, the latency floor the
  service guarantees under total checkpoint loss;
* **restart** — a service with a persistent cache is killed and rebuilt
  on the same journal: warm-start hit rate and hit latency vs the
  cold-start recompute cost it avoids.

A **router** section drives the replicated tier (2 ``repro serve``
subprocesses behind the consistent-hash router, replication 2) under a
sustained request stream and reports p50/p95/p99 — tail latency is the
whole point of hedging — for three deployments: healthy with hedging,
healthy without hedging, and one shard SIGKILLed mid-stream (failover
cost), plus the failover/hedge counters for each.

Run as a script (``python benchmarks/bench_serve.py``); writes
``BENCH_serve.json`` at the repo root.  ``--tiny`` shrinks repeats for the
CI smoke and redirects output under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_dataset
from repro.obs import latency_summary
from repro.reliability import Fault, FaultPlan
from repro.serve import (
    CheckpointRegistry,
    PartitionRequest,
    PartitionService,
    ServiceConfig,
)
from repro.serve.registry import default_serving_config

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"
REGISTRY_DIR = REPO_ROOT / "benchmarks" / ".cache" / "serve_registry"

N_CHIPS = 4
SAMPLES = 16


def _rl_config() -> RLPartitionerConfig:
    """Exactly the network ``repro serve`` runs: the bench must measure the
    configuration the service actually serves."""
    return default_serving_config()


def _registry() -> CheckpointRegistry:
    """A registry with one published serving checkpoint (built once)."""
    registry = CheckpointRegistry(str(REGISTRY_DIR))
    if not registry.versions("bench"):
        registry.publish_partitioner(
            "bench",
            RLPartitioner(N_CHIPS, config=_rl_config(), rng=0),
            metadata={"purpose": "bench_serve"},
        )
    return registry


def _service() -> PartitionService:
    return PartitionService(
        ServiceConfig(default_samples=SAMPLES, cache_capacity=512, seed=0),
        registry=_registry(),
        partitioner_config=_rl_config(),
    )


def _request(graph) -> PartitionRequest:
    return PartitionRequest(
        graph=graph, n_chips=N_CHIPS, checkpoint="bench", samples=SAMPLES
    )


def _perturbed(graph, k: int):
    """A content-distinct variant of ``graph`` (same size, same difficulty).

    Adds ``k`` nanoseconds (``k * 1e-3`` µs) to one node's compute cost:
    enough to change the content fingerprint (exact float64 bytes are
    hashed), far too small to change what the search or cost model does.
    """
    from repro.graphs.graph import CompGraph

    compute = graph.compute_us.copy()
    compute[0] += k * 1e-3
    return CompGraph(
        names=graph.names,
        op_types=graph.op_types,
        compute_us=compute,
        output_bytes=graph.output_bytes,
        param_bytes=graph.param_bytes,
        src=graph.src,
        dst=graph.dst,
        name=f"{graph.name}~{k}",
    )


def bench_request_classes(graphs, n_repeats: int) -> dict:
    """Per-class latency percentiles + the cached-vs-cold guarantees.

    Cold latencies come from *fresh services* (one per repeat, first
    request each); warm from cache misses on a live service; cached from
    repeat requests.  The identity check compares the cold and cached
    assignments of the same request on every service.
    """
    cold_ms, warm_ms, cached_ms = [], [], []
    bit_identical = True
    for repeat in range(n_repeats):
        service = _service()
        # Rotate which graph lands in the cold slot so every class samples
        # the same workload mix (graphs differ in search cost).
        rotated = graphs[repeat % len(graphs):] + graphs[: repeat % len(graphs)]
        for i, graph in enumerate(rotated):
            response = service.submit(_request(graph))
            (cold_ms if i == 0 else warm_ms).append(response.latency_ms)
            assert response.source == ("cold" if i == 0 else "warm")
            hit = service.submit(_request(graph))
            assert hit.cached
            cached_ms.append(hit.latency_ms)
            bit_identical &= bool(
                np.array_equal(hit.assignment, response.assignment)
            )
    cold = latency_summary(cold_ms)
    cached = latency_summary(cached_ms)
    return {
        "cold": cold,
        "warm": latency_summary(warm_ms),
        "cached": cached,
        "cached_bit_identical_to_cold": bit_identical,
        "speedup_cached_vs_cold_p50": round(cold["p50_ms"] / cached["p50_ms"], 1),
    }


def bench_sustained(graphs, n_requests: int) -> dict:
    """Requests/sec for an all-hit stream and an all-miss stream.

    The hit stream cycles over pre-warmed entries (the steady serving
    state); the miss stream feeds distinct graph variants so every request
    pays a zero-shot search (the worst case, bounded by search throughput).
    """
    service = _service()
    for graph in graphs:
        service.submit(_request(graph))

    start = time.perf_counter()
    for k in range(n_requests):
        response = service.submit(_request(graphs[k % len(graphs)]))
        assert response.cached
    hit_elapsed = time.perf_counter() - start

    # Distinct fingerprints per request via distinct graph *content* (an
    # epsilon on one node's compute cost changes the content hash without
    # changing search difficulty), so every miss runs a real search at the
    # same SAMPLES budget the JSON reports.
    service_miss = _service()
    miss_budget = max(n_requests // 4, 2)
    start = time.perf_counter()
    for k in range(miss_budget):
        response = service_miss.submit(
            _request(_perturbed(graphs[0], k + 1))
        )
        assert not response.cached
    miss_elapsed = time.perf_counter() - start
    return {
        "hit_stream": {
            "n": n_requests,
            "requests_per_sec": n_requests / max(hit_elapsed, 1e-9),
        },
        "miss_stream": {
            "n": miss_budget,
            "requests_per_sec": miss_budget / max(miss_elapsed, 1e-9),
        },
    }


def bench_coalescing(graphs, per_client: int) -> dict:
    """All-miss sustained req/s under concurrent clients, coalescing on/off.

    Each client thread drives its own stream of content-distinct graph
    variants (every request a zero-shot search), released together by a
    barrier.  The coalescing deployment sets ``batch_max_size`` to the
    client count so a synchronized round flushes immediately; the window
    only bounds straggler waiting.  Services run ``n_workers=2``: the win
    comes from amortizing the replay pool's fork/broadcast/teardown over
    batch members, so it needs a forked pool to exist at all.
    """
    import threading

    def run_cell(concurrency: int, coalesce: bool) -> dict:
        service = PartitionService(
            ServiceConfig(
                default_samples=SAMPLES,
                cache_capacity=512,
                seed=0,
                n_workers=2,
                batch_window_ms=20.0 if coalesce else 0.0,
                batch_max_size=max(concurrency, 2),
            ),
            registry=_registry(),
            partitioner_config=_rl_config(),
        )
        # One throwaway cold request warms the pool (partitioner build +
        # checkpoint load), so the timed region measures steady all-miss
        # throughput, not one-time setup.
        service.submit(_request(_perturbed(graphs[0], 10_000)))
        barrier = threading.Barrier(concurrency)
        errors = []

        def client(cid: int):
            barrier.wait()
            for j in range(per_client):
                k = cid * per_client + j + 1
                response = service.submit(_request(_perturbed(graphs[0], k)))
                if response.cached:  # all-miss by construction
                    errors.append(f"unexpected hit for variant {k}")

        threads = [
            threading.Thread(target=client, args=(cid,))
            for cid in range(concurrency)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        batching = service.metrics()["batching"]
        n = concurrency * per_client
        return {
            "n_requests": n,
            "requests_per_sec": n / max(elapsed, 1e-9),
            "coalesced_requests": batching["coalesced_requests"],
            "batches_flushed": batching["batches_flushed"],
        }

    rows = []
    for concurrency in (1, 4, 8):
        off = run_cell(concurrency, coalesce=False)
        on = run_cell(concurrency, coalesce=True)
        rows.append(
            {
                "concurrency": concurrency,
                "coalescing_off": off,
                "coalescing_on": on,
                "speedup": round(
                    on["requests_per_sec"] / max(off["requests_per_sec"], 1e-9),
                    3,
                ),
            }
        )
    return {
        "n_workers": 2,
        "batch_window_ms": 20.0,
        "per_client_requests": per_client,
        "sweep": rows,
    }


def bench_precision_cold(graphs, n_repeats: int) -> dict:
    """Cold/miss latency of the int8 inference deployment vs float32.

    One fresh service per repeat and precision; the first request is the
    cold row (build + checkpoint install — for int8 that includes weight
    quantization), the rest are warm misses.  The int8 row also reports
    the worst-case dequantization error of the installed weights, the
    number /metrics exports as ``int8_quantization``.
    """
    rows = {}
    for precision in ("float32", "int8"):
        cold_ms, miss_ms = [], []
        quant_err = None
        for repeat in range(n_repeats):
            service = PartitionService(
                ServiceConfig(
                    default_samples=SAMPLES,
                    cache_capacity=512,
                    seed=0,
                    precision=precision,
                ),
                registry=_registry(),
                # An explicit partitioner_config's own precision wins, so
                # build it at the deployment's precision.
                partitioner_config=default_serving_config(precision=precision),
            )
            rotated = (
                graphs[repeat % len(graphs):] + graphs[: repeat % len(graphs)]
            )
            for i, graph in enumerate(rotated):
                response = service.submit(_request(graph))
                assert not response.cached
                (cold_ms if i == 0 else miss_ms).append(response.latency_ms)
            if precision == "int8":
                quant = service.metrics()["int8_quantization"]
                quant_err = max(s["max_abs_err"] for s in quant.values())
        rows[precision] = {
            "cold": latency_summary(cold_ms),
            "miss": latency_summary(miss_ms),
        }
        if quant_err is not None:
            rows[precision]["max_abs_quantization_error"] = quant_err
    rows["int8_vs_float32_cold_p50"] = round(
        rows["int8"]["cold"]["p50_ms"] / rows["float32"]["cold"]["p50_ms"], 3
    )
    return rows


def bench_degraded(graphs, n_repeats: int) -> dict:
    """Latency of the graceful-degradation path under total checkpoint loss.

    An always-firing injected registry fault makes every weights load
    fail, so every request is served by the greedy-heuristic fallback
    (``source="degraded"``, never cached — each repeat pays the full
    path).  This is the availability floor: what a client sees while the
    checkpoint store is down.
    """
    plan = FaultPlan(
        [Fault(site="registry", kind="io_error", at=("load",), times=-1)]
    )
    service = PartitionService(
        ServiceConfig(
            default_samples=SAMPLES,
            cache_capacity=512,
            seed=0,
            fault_plan=plan,
        ),
        registry=CheckpointRegistry(str(REGISTRY_DIR), fault_plan=plan),
        partitioner_config=_rl_config(),
    )
    degraded_ms = []
    for _ in range(n_repeats):
        for graph in graphs:
            response = service.submit(_request(graph))
            assert response.degraded and response.source == "degraded"
            degraded_ms.append(response.latency_ms)
    metrics = service.metrics()
    return {
        "degraded": latency_summary(degraded_ms),
        "degraded_serves": metrics["reliability"]["degraded_serves"],
        "faults_fired": metrics["reliability"]["faults_fired"],
    }


def bench_restart_recovery(graphs) -> dict:
    """Kill a persistent-cache service, rebuild on the journal, re-request.

    Reports the cold-start cost (first boot: every request a miss), the
    restarted service's hit rate over the same workload (1.0 = the journal
    replayed everything), and the warm hit latency that replaces those
    recomputes.
    """
    cache_dir = REPO_ROOT / "benchmarks" / ".cache" / "serve_restart"
    shutil.rmtree(cache_dir, ignore_errors=True)

    def _persistent_service() -> PartitionService:
        return PartitionService(
            ServiceConfig(
                default_samples=SAMPLES,
                cache_capacity=512,
                seed=0,
                cache_dir=str(cache_dir),
            ),
            registry=_registry(),
            partitioner_config=_rl_config(),
        )

    first_boot_ms = []
    service = _persistent_service()
    for graph in graphs:
        response = service.submit(_request(graph))
        assert not response.cached
        first_boot_ms.append(response.latency_ms)
    service.close()  # the clean half; the journal also survives kill -9

    restarted = _persistent_service()
    warm_hit_ms, hits = [], 0
    for graph in graphs:
        response = restarted.submit(_request(graph))
        hits += int(response.cached)
        warm_hit_ms.append(response.latency_ms)
    stats = restarted.metrics()["cache"]
    shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "cold_start": latency_summary(first_boot_ms),
        "restarted_hit_rate": hits / len(graphs),
        "restarted_hit": latency_summary(warm_hit_ms),
        "warm_entries_recovered": stats["warm_entries"],
        "corrupt_skipped": stats["corrupt_skipped"],
    }


def bench_router(graphs, n_requests: int) -> dict:
    """Sustained load on the replicated tier: 2 shard processes, R=2.

    Three deployments over the same request stream (cycling the graph set,
    so the steady state is cache hits — the regime where routing overhead
    and tail behaviour are visible):

    * ``healthy`` — both shards up, hedging on;
    * ``hedging_off`` — both shards up, no hedge (the control for what
      hedging buys/costs at the tail);
    * ``one_shard_killed`` — the stream's first primary is SIGKILLed
      before the stream starts: every request that hashes to it pays
      failover until the breaker opens, then skips it outright.

    Every reply must be non-degraded 200 — one replica is always enough.
    """
    from repro.graphs.serialization import graph_to_dict
    from repro.serve import RouterConfig, ShardRouter

    cycle = [
        {"graph": graph_to_dict(g), "chips": N_CHIPS, "samples": SAMPLES}
        for g in graphs
    ]
    payloads = [cycle[k % len(cycle)] for k in range(n_requests)]
    deployments = (
        ("healthy", True, False),
        ("hedging_off", False, False),
        ("one_shard_killed", True, True),
    )
    rows = {}
    for name, hedge, kill in deployments:
        router = ShardRouter.spawn(
            2,
            config=RouterConfig(
                replication=2,
                probe_interval_s=1.0,
                failure_threshold=2,
                breaker_reset_s=1.0,
                hedge=hedge,
            ),
            seed=0,
        )
        try:
            for payload in cycle:  # warm the primaries' caches
                status, _ = router.handle_partition(payload)
                assert status == 200
            if kill:
                victim = router.ring.replicas(
                    router.routing_key(payloads[0]), 1
                )[0]
                router._shards[victim].endpoint.kill()
            latencies_ms = []
            for payload in payloads:
                start = time.perf_counter()
                status, reply = router.handle_partition(payload)
                latencies_ms.append((time.perf_counter() - start) * 1e3)
                assert status == 200 and not reply.get("degraded")
            metrics = router.metrics()
            rows[name] = {
                **latency_summary(latencies_ms),
                "requests_per_sec": len(payloads)
                / max(sum(latencies_ms) / 1e3, 1e-9),
                "failovers": metrics["failovers"],
                "hedges_fired": metrics["hedges_fired"],
                "hedge_wins": metrics["hedge_wins"],
                "degraded_serves": metrics["degraded_serves"],
            }
        finally:
            router.close()
    return {"n_shards": 2, "replication": 2, "deployments": rows}


def bench_tracing_overhead(graphs, n_requests: int) -> dict:
    """End-to-end cost of request tracing on the cached-hit HTTP path.

    Two identical in-process servers driven over real HTTP with the same
    all-hit stream — one with tracing off, one writing every trace
    (``trace_sample=1.0``, the worst case).  The cached hit is the
    shortest request the service serves, so it is where per-request span
    bookkeeping would show up first; the row records the p50/mean overhead
    against the < 2% zero-perturbation target from the observability
    invariants (ROADMAP.md).
    """
    import tempfile

    from repro.graphs.serialization import graph_to_dict
    from repro.serve import PartitionServer, request_partition

    payload = {
        "graph": graph_to_dict(graphs[0]),
        "chips": N_CHIPS,
        "samples": SAMPLES,
    }

    def run_cell(trace_dir: "str | None") -> "list[float]":
        service = PartitionService(
            ServiceConfig(
                default_samples=SAMPLES,
                cache_capacity=512,
                seed=0,
                trace_dir=trace_dir,
            ),
            registry=_registry(),
            partitioner_config=_rl_config(),
        )
        server = PartitionServer(service, host="127.0.0.1", port=0).start()
        try:
            request_partition(payload, port=server.port)  # cold: warm the cache
            for _ in range(20):  # connection/interpreter warm-up, untimed
                request_partition(payload, port=server.port)
            latencies_ms = []
            for _ in range(n_requests):
                start = time.perf_counter()
                reply = request_partition(payload, port=server.port)
                latencies_ms.append((time.perf_counter() - start) * 1e3)
                assert reply["cached"]
            return latencies_ms
        finally:
            server.shutdown()
            service.close()

    # Interleaved off/on rounds so machine drift (GC, turbo, neighbours)
    # hits both arms equally instead of masquerading as tracing cost.
    rounds = 2
    off_ms: "list[float]" = []
    on_ms: "list[float]" = []
    with tempfile.TemporaryDirectory() as tmp:
        for _ in range(rounds):
            off_ms.extend(run_cell(None))
            on_ms.extend(run_cell(tmp))
    off = latency_summary(off_ms)
    on = latency_summary(on_ms)
    return {
        "n_requests": n_requests * rounds,
        "trace_sample": 1.0,
        "tracing_off": off,
        "tracing_on": on,
        "overhead_pct_p50": round(
            (on["p50_ms"] / max(off["p50_ms"], 1e-9) - 1.0) * 100, 2
        ),
        "overhead_pct_mean": round(
            (on["mean_ms"] / max(off["mean_ms"], 1e-9) - 1.0) * 100, 2
        ),
        "target_pct": 2.0,
    }


def main(argv=None) -> dict:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    n_graphs = 3 if tiny else 6
    n_repeats = 2 if tiny else 5
    n_requests = 50 if tiny else 400

    dataset = build_dataset(seed=0)
    graphs = list(dataset.test[:n_graphs])

    results = {
        "bench": "serve",
        "tiny": tiny,
        "cpu_count": os.cpu_count(),
        "n_chips": N_CHIPS,
        "samples_per_miss": SAMPLES,
        "checkpoint": "bench@1",
        "graphs": [g.name for g in graphs],
        "n_repeats": n_repeats,
        "latency": bench_request_classes(graphs, n_repeats),
        "sustained": bench_sustained(graphs, n_requests),
        "coalescing": bench_coalescing(graphs, 2 if tiny else 4),
        "precision": bench_precision_cold(graphs, n_repeats),
        "reliability": {
            **bench_degraded(graphs, n_repeats),
            "restart": bench_restart_recovery(graphs),
        },
        "router": bench_router(graphs, max(n_requests // 4, 12)),
        "tracing": bench_tracing_overhead(graphs, max(n_requests, 100)),
    }

    out_path = (
        RESULT_PATH
        if not tiny
        else REPO_ROOT / "benchmarks" / "results" / "BENCH_serve_tiny.json"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    latency = results["latency"]
    for cls in ("cold", "warm", "cached"):
        row = latency[cls]
        print(
            f"{cls:>7}: p50 {row['p50_ms']:8.3f} ms   p95 {row['p95_ms']:8.3f} ms"
            f"   (n={row['n']})"
        )
    print(
        f"cached vs cold p50 speedup: {latency['speedup_cached_vs_cold_p50']}x"
        f"  | bit-identical: {latency['cached_bit_identical_to_cold']}"
    )
    sustained = results["sustained"]
    print(
        f"sustained: {sustained['hit_stream']['requests_per_sec']:9.1f} req/s"
        f" all-hit | {sustained['miss_stream']['requests_per_sec']:6.2f} req/s"
        f" all-miss"
    )
    for row in results["coalescing"]["sweep"]:
        on, off = row["coalescing_on"], row["coalescing_off"]
        print(
            f"coalescing @ {row['concurrency']} clients: "
            f"{off['requests_per_sec']:6.2f} req/s off | "
            f"{on['requests_per_sec']:6.2f} req/s on "
            f"({row['speedup']}x, {on['coalesced_requests']} coalesced)"
        )
    precision = results["precision"]
    print(
        f"precision: cold p50 float32 "
        f"{precision['float32']['cold']['p50_ms']:.1f} ms | int8 "
        f"{precision['int8']['cold']['p50_ms']:.1f} ms "
        f"(quant err {precision['int8']['max_abs_quantization_error']:.4f})"
    )
    reliability = results["reliability"]
    row = reliability["degraded"]
    print(
        f"degraded: p50 {row['p50_ms']:8.3f} ms   p95 {row['p95_ms']:8.3f} ms"
        f"   (n={row['n']}, checkpoint store down)"
    )
    restart = reliability["restart"]
    print(
        f"restart: hit rate {restart['restarted_hit_rate']:.2f} "
        f"({restart['warm_entries_recovered']} entries recovered), "
        f"hit p50 {restart['restarted_hit']['p50_ms']:.3f} ms vs "
        f"cold-start p50 {restart['cold_start']['p50_ms']:.3f} ms"
    )
    tracing = results["tracing"]
    print(
        f"tracing: cached-hit p50 {tracing['tracing_off']['p50_ms']:.3f} ms off"
        f" | {tracing['tracing_on']['p50_ms']:.3f} ms on "
        f"({tracing['overhead_pct_p50']:+.1f}% p50, "
        f"{tracing['overhead_pct_mean']:+.1f}% mean; "
        f"target < {tracing['target_pct']:.0f}%)"
    )
    for name, row in results["router"]["deployments"].items():
        print(
            f"router/{name:>16}: p50 {row['p50_ms']:8.3f} ms  "
            f"p95 {row['p95_ms']:8.3f} ms  p99 {row['p99_ms']:8.3f} ms  "
            f"(failovers {row['failovers']}, hedges {row['hedges_fired']})"
        )
    return results


if __name__ == "__main__":
    main()
