"""Serving-layer latency benchmark: cold / warm / cached request classes.

The serving pitch is operational: the expensive transferability machinery
(policy build, checkpoint load, zero-shot search) is paid once per
checkpoint and once per distinct request, after which repeated requests are
a fingerprint lookup.  This bench measures the three request classes the
``/metrics`` endpoint distinguishes:

* **cold** — first request on a fresh service: partitioner build +
  checkpoint load from the registry + environment baseline + zero-shot
  search;
* **warm** — cache miss on a live service: the partitioner and weights are
  already resident, only the per-graph work remains;
* **cached** — repeat request: fingerprint + LRU lookup, no policy/solver.

It reports p50/p95 latency per class, sustained requests/sec for an
all-hit stream and an all-miss stream, and pins the core guarantees in the
JSON: the cached reply is bit-identical to the cold one and >= 10x faster
(the tier-1 suite pins the same bound in
``tests/serve/test_service.py::test_cached_request_is_10x_faster_and_identical``).

Run as a script (``python benchmarks/bench_serve.py``); writes
``BENCH_serve.json`` at the repo root.  ``--tiny`` shrinks repeats for the
CI smoke and redirects output under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_dataset
from repro.serve import (
    CheckpointRegistry,
    PartitionRequest,
    PartitionService,
    ServiceConfig,
)
from repro.serve.registry import default_serving_config

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"
REGISTRY_DIR = REPO_ROOT / "benchmarks" / ".cache" / "serve_registry"

N_CHIPS = 4
SAMPLES = 16


def _rl_config() -> RLPartitionerConfig:
    """Exactly the network ``repro serve`` runs: the bench must measure the
    configuration the service actually serves."""
    return default_serving_config()


def _registry() -> CheckpointRegistry:
    """A registry with one published serving checkpoint (built once)."""
    registry = CheckpointRegistry(str(REGISTRY_DIR))
    if not registry.versions("bench"):
        registry.publish_partitioner(
            "bench",
            RLPartitioner(N_CHIPS, config=_rl_config(), rng=0),
            metadata={"purpose": "bench_serve"},
        )
    return registry


def _service() -> PartitionService:
    return PartitionService(
        ServiceConfig(default_samples=SAMPLES, cache_capacity=512, seed=0),
        registry=_registry(),
        partitioner_config=_rl_config(),
    )


def _request(graph) -> PartitionRequest:
    return PartitionRequest(
        graph=graph, n_chips=N_CHIPS, checkpoint="bench", samples=SAMPLES
    )


def _perturbed(graph, k: int):
    """A content-distinct variant of ``graph`` (same size, same difficulty).

    Adds ``k`` nanoseconds (``k * 1e-3`` µs) to one node's compute cost:
    enough to change the content fingerprint (exact float64 bytes are
    hashed), far too small to change what the search or cost model does.
    """
    from repro.graphs.graph import CompGraph

    compute = graph.compute_us.copy()
    compute[0] += k * 1e-3
    return CompGraph(
        names=graph.names,
        op_types=graph.op_types,
        compute_us=compute,
        output_bytes=graph.output_bytes,
        param_bytes=graph.param_bytes,
        src=graph.src,
        dst=graph.dst,
        name=f"{graph.name}~{k}",
    )


def _percentiles(latencies_ms: "list[float]") -> dict:
    arr = np.asarray(latencies_ms, dtype=np.float64)
    return {
        "n": int(arr.size),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "mean_ms": float(arr.mean()),
    }


def bench_request_classes(graphs, n_repeats: int) -> dict:
    """Per-class latency percentiles + the cached-vs-cold guarantees.

    Cold latencies come from *fresh services* (one per repeat, first
    request each); warm from cache misses on a live service; cached from
    repeat requests.  The identity check compares the cold and cached
    assignments of the same request on every service.
    """
    cold_ms, warm_ms, cached_ms = [], [], []
    bit_identical = True
    for repeat in range(n_repeats):
        service = _service()
        # Rotate which graph lands in the cold slot so every class samples
        # the same workload mix (graphs differ in search cost).
        rotated = graphs[repeat % len(graphs):] + graphs[: repeat % len(graphs)]
        for i, graph in enumerate(rotated):
            response = service.submit(_request(graph))
            (cold_ms if i == 0 else warm_ms).append(response.latency_ms)
            assert response.source == ("cold" if i == 0 else "warm")
            hit = service.submit(_request(graph))
            assert hit.cached
            cached_ms.append(hit.latency_ms)
            bit_identical &= bool(
                np.array_equal(hit.assignment, response.assignment)
            )
    cold = _percentiles(cold_ms)
    cached = _percentiles(cached_ms)
    return {
        "cold": cold,
        "warm": _percentiles(warm_ms),
        "cached": cached,
        "cached_bit_identical_to_cold": bit_identical,
        "speedup_cached_vs_cold_p50": round(cold["p50_ms"] / cached["p50_ms"], 1),
    }


def bench_sustained(graphs, n_requests: int) -> dict:
    """Requests/sec for an all-hit stream and an all-miss stream.

    The hit stream cycles over pre-warmed entries (the steady serving
    state); the miss stream feeds distinct graph variants so every request
    pays a zero-shot search (the worst case, bounded by search throughput).
    """
    service = _service()
    for graph in graphs:
        service.submit(_request(graph))

    start = time.perf_counter()
    for k in range(n_requests):
        response = service.submit(_request(graphs[k % len(graphs)]))
        assert response.cached
    hit_elapsed = time.perf_counter() - start

    # Distinct fingerprints per request via distinct graph *content* (an
    # epsilon on one node's compute cost changes the content hash without
    # changing search difficulty), so every miss runs a real search at the
    # same SAMPLES budget the JSON reports.
    service_miss = _service()
    miss_budget = max(n_requests // 4, 2)
    start = time.perf_counter()
    for k in range(miss_budget):
        response = service_miss.submit(
            _request(_perturbed(graphs[0], k + 1))
        )
        assert not response.cached
    miss_elapsed = time.perf_counter() - start
    return {
        "hit_stream": {
            "n": n_requests,
            "requests_per_sec": n_requests / max(hit_elapsed, 1e-9),
        },
        "miss_stream": {
            "n": miss_budget,
            "requests_per_sec": miss_budget / max(miss_elapsed, 1e-9),
        },
    }


def main(argv=None) -> dict:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    n_graphs = 3 if tiny else 6
    n_repeats = 2 if tiny else 5
    n_requests = 50 if tiny else 400

    dataset = build_dataset(seed=0)
    graphs = list(dataset.test[:n_graphs])

    results = {
        "bench": "serve",
        "tiny": tiny,
        "cpu_count": os.cpu_count(),
        "n_chips": N_CHIPS,
        "samples_per_miss": SAMPLES,
        "checkpoint": "bench@1",
        "graphs": [g.name for g in graphs],
        "n_repeats": n_repeats,
        "latency": bench_request_classes(graphs, n_repeats),
        "sustained": bench_sustained(graphs, n_requests),
    }

    out_path = (
        RESULT_PATH
        if not tiny
        else REPO_ROOT / "benchmarks" / "results" / "BENCH_serve_tiny.json"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    latency = results["latency"]
    for cls in ("cold", "warm", "cached"):
        row = latency[cls]
        print(
            f"{cls:>7}: p50 {row['p50_ms']:8.3f} ms   p95 {row['p95_ms']:8.3f} ms"
            f"   (n={row['n']})"
        )
    print(
        f"cached vs cold p50 speedup: {latency['speedup_cached_vs_cold_p50']}x"
        f"  | bit-identical: {latency['cached_bit_identical_to_cold']}"
    )
    sustained = results["sustained"]
    print(
        f"sustained: {sustained['hit_stream']['requests_per_sec']:9.1f} req/s"
        f" all-hit | {sustained['miss_stream']['requests_per_sec']:6.2f} req/s"
        f" all-miss"
    )
    return results


if __name__ == "__main__":
    main()
