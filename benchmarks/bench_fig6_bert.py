"""Figure 6: BERT throughput improvement on the "real hardware" simulator.

Reproduces the paper's Figure 6: five methods partitioning BERT on the
pipeline simulator (ring-link contention, per-op perturbation, dynamic
memory constraint), reported as best-so-far throughput improvement over the
greedy production-compiler heuristic.

Paper shape to reproduce: RL and RL Finetuning end above Random and SA;
fine-tuning improves fastest at small sample counts; zero-shot transfers
poorly to the out-of-distribution BERT graph (well below fine-tuning).
"""

import numpy as np

from repro.bench.harness import run_methods

from .common import (
    get_bench_config,
    bert_pretrained_state,
    five_methods,
    scaled_bert,
    simulator_env,
    write_result,
)


def _run_fig6():
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    pretrained = bert_pretrained_state(cfg)
    methods = five_methods(cfg, cfg.n_chips_bert, pretrained)

    curves = run_methods(
        methods,
        lambda: simulator_env(graph, cfg.n_chips_bert),
        cfg.bert_samples,
        graph_name=graph.name,
    )
    series = {c.method: c.curve for c in curves}
    return cfg, graph, series


def bench_fig6_bert(benchmark):
    """Regenerate Figure 6 and record the per-method series."""
    cfg, graph, series = benchmark.pedantic(_run_fig6, rounds=1, iterations=1)

    checkpoints = sorted(
        {
            max(1, cfg.bert_samples // 10),
            cfg.bert_samples // 4,
            cfg.bert_samples // 2,
            cfg.bert_samples,
        }
    )
    lines = [
        "Figure 6 (reproduced): BERT improvement over the greedy heuristic",
        f"graph: {graph.name} ({graph.n_nodes} nodes), chips: {cfg.n_chips_bert}, "
        f"budget: {cfg.bert_samples} samples, scale: {cfg.scale}",
        "",
        "method          " + "".join(f"@{c:>6} " for c in checkpoints),
    ]
    for name, curve in series.items():
        row = "".join(f"{curve[c - 1]:>7.3f} " for c in checkpoints)
        lines.append(f"{name:<15} {row}")
    write_result("fig6_bert", "\n".join(lines))

    final = {name: curve[-1] for name, curve in series.items()}
    # Every method beats the count-balanced greedy heuristic eventually.
    assert final["Random"] > 1.0 and final["SA"] > 1.0, final
    # The learned arms are competitive with the unlearned searches.
    best_unlearned = max(final["Random"], final["SA"])
    best_rl = max(final["RL"], final["RL Finetuning"])
    assert best_rl >= 0.9 * best_unlearned, final
