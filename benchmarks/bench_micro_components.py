"""Microbenchmarks: solver sampling rate and cost-model evaluation rate.

Not a paper figure, but the numbers that determine end-to-end search time:
how fast the constraint solver emits valid partitions (the paper's 26.97 s
per sample was dominated by real-hardware evaluation; ours is solver-bound)
and how fast each cost model scores a partition.
"""

import numpy as np

from repro.core.baselines import greedy_partition
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.simulator import PipelineSimulator
from repro.solver.strategies import fix_partition, sample_partition

from .common import get_bench_config, calibrated_package, scaled_bert


def bench_solver_sample_mode(benchmark):
    """Valid-partition generation rate, SAMPLE mode (Algorithm 1)."""
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    probs = np.full((graph.n_nodes, cfg.n_chips_bert), 1.0 / cfg.n_chips_bert)
    rng = np.random.default_rng(0)
    benchmark(sample_partition, graph, probs, cfg.n_chips_bert, rng)


def bench_solver_fix_mode(benchmark):
    """Valid-partition repair rate, FIX mode (Algorithm 2)."""
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    rng = np.random.default_rng(0)
    candidate = rng.integers(0, cfg.n_chips_bert, graph.n_nodes)
    benchmark(fix_partition, graph, candidate, cfg.n_chips_bert, rng)


def bench_analytical_model(benchmark):
    """Analytical cost-model evaluation rate."""
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    package = calibrated_package(graph, cfg.n_chips_bert)
    model = AnalyticalCostModel(package)
    assignment = greedy_partition(graph, cfg.n_chips_bert)
    benchmark(model.evaluate, graph, assignment)


def bench_pipeline_simulator(benchmark):
    """Pipeline-simulator evaluation rate (includes memory planning)."""
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    package = calibrated_package(graph, cfg.n_chips_bert)
    simulator = PipelineSimulator(package)
    assignment = greedy_partition(graph, cfg.n_chips_bert)
    benchmark(simulator.evaluate, graph, assignment)


def bench_greedy_heuristic(benchmark):
    """The O(N) production heuristic itself."""
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    benchmark(greedy_partition, graph, cfg.n_chips_bert)
