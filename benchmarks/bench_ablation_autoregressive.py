"""Ablation: autoregressive (Eq. 6) vs iterative non-autoregressive (Eq. 7).

The paper replaces the ideal autoregressive action factorisation with
``T`` parallel refinement rounds because "computing the y_i's sequentially
can be extremely expensive".  This bench measures both the cost gap and the
sample-quality gap on a small graph, where the autoregressive reference is
still affordable.
"""

import time

import numpy as np

from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_dataset
from repro.rl.features import featurize
from repro.rl.ppo import PPOConfig
from repro.solver.strategies import sample_partition

from .common import analytical_env, get_bench_config, write_result


def _run_ablation():
    cfg = get_bench_config()
    graph = build_dataset(seed=0).test[1]
    n_chips = cfg.n_chips_small
    feats = featurize(graph)
    env = analytical_env(graph, n_chips)

    # A briefly trained policy so the distributions are non-trivial.
    partitioner = RLPartitioner(
        n_chips,
        config=RLPartitionerConfig(
            hidden=32, n_sage_layers=2,
            ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=4),
        ),
        rng=0,
    )
    partitioner.search(env, cfg.testset_samples, features=feats)
    policy = partitioner.policy

    n_eval = max(cfg.testset_samples // 4, 8)
    rng = np.random.default_rng(1)
    results = {}
    for mode in ("iterative", "autoregressive"):
        scores = []
        start = time.time()
        for _ in range(n_eval):
            if mode == "iterative":
                _, _, probs = policy.propose(feats, rng=rng)
            else:
                _, probs = policy.propose_autoregressive(feats, rng=rng)
            y = sample_partition(graph, probs, n_chips, rng=rng)
            scores.append(env.evaluate(y).improvement)
        results[mode] = (np.array(scores), time.time() - start)
    return cfg, graph, n_eval, results


def bench_ablation_autoregressive(benchmark):
    """Compare Eq. 6 and Eq. 7 proposal schemes."""
    cfg, graph, n_eval, results = benchmark.pedantic(
        _run_ablation, rounds=1, iterations=1
    )

    lines = [
        "Ablation (reproduced): autoregressive (Eq. 6) vs iterative (Eq. 7)",
        f"graph: {graph.name} ({graph.n_nodes} nodes), chips: {cfg.n_chips_small}, "
        f"{n_eval} proposals each, scale: {cfg.scale}",
        "",
        f"{'scheme':<16} {'mean impr':>10} {'best impr':>10} {'time/proposal':>14}",
    ]
    for mode, (scores, elapsed) in results.items():
        lines.append(
            f"{mode:<16} {scores.mean():>9.3f}x {scores.max():>9.3f}x "
            f"{elapsed / n_eval * 1e3:>11.1f} ms"
        )
    write_result("ablation_autoregressive", "\n".join(lines))

    it_scores, it_time = results["iterative"]
    ar_scores, ar_time = results["autoregressive"]
    # The paper's cost argument: autoregressive is far more expensive.
    assert ar_time > it_time * 3
    # The approximation argument: iterative quality is in the same league.
    assert it_scores.mean() > ar_scores.mean() * 0.8
