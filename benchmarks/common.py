"""Shared configuration and cached artifacts for the paper benchmarks.

Every bench draws its sizing from ``REPRO_BENCH_SCALE`` (see
``repro.bench.harness``): the default (1.0) runs the full benchmark suite in
minutes on a laptop; larger values move budgets and problem sizes toward the
paper's configuration (scale 8 is roughly paper scale: full BERT, 36 chips,
800-sample budgets).

The pre-trained checkpoint used by the Zeroshot/Finetuning arms is built
once per scale and cached under ``benchmarks/.cache``.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.harness import BenchScale, bench_scale
from repro.core.baselines import greedy_partition
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import PretrainConfig, pretrain, select_checkpoint
from repro.graphs.graph import CompGraph
from repro.graphs.zoo import build_bert, build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MemoryPlanner
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.rl.ppo import PPOConfig

CACHE_DIR = Path(__file__).parent / ".cache"
RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchConfig:
    """Concrete sizes for one benchmark run, derived from the scale."""

    scale: float
    n_chips_small: int        # package size for the test-set experiments
    n_chips_bert: int         # package size for the BERT experiments
    bert_layers: int
    bert_hidden: int
    bert_heads: int
    bert_seq: int
    n_test_graphs: int
    testset_samples: int      # per-method budget, Fig. 5 / Table 2
    bert_samples: int         # per-method budget, Fig. 6 / Table 3
    calibration_samples: int  # Fig. 7
    pretrain_samples: int
    pretrain_graphs: int


def get_bench_config() -> BenchConfig:
    """Resolve the benchmark sizing from ``REPRO_BENCH_SCALE``."""
    s: BenchScale = bench_scale()
    return BenchConfig(
        scale=s.scale,
        n_chips_small=4,
        n_chips_bert=s.chips(8, cap=36),
        bert_layers=s.layers(3, cap=24),
        bert_hidden=256,
        bert_heads=8,
        bert_seq=128,
        n_test_graphs=int(np.clip(round(3 * s.scale), 3, 16)),
        testset_samples=s.samples(80, cap=5000),
        bert_samples=s.samples(100, cap=800),
        calibration_samples=s.samples(150, cap=2000),
        pretrain_samples=s.samples(600, cap=20000),
        pretrain_graphs=int(np.clip(round(6 * s.scale), 3, 66)),
    )


def rl_config() -> RLPartitionerConfig:
    """The RL partitioner configuration used across benches.

    Paper hyper-parameters for PPO (20 rollouts, 4 minibatches, 10 epochs);
    the network is narrower than the paper's 8x128 so the default-scale
    bench stays fast (the full width is exercised in the unit tests).
    """
    return RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        ppo=PPOConfig(n_rollouts=20, n_minibatches=4, n_epochs=10),
    )


def scaled_bert(cfg: BenchConfig) -> CompGraph:
    """The BERT workload at bench scale (full 2138-node graph at scale 8).

    The scaled variant keeps BERT-Large's vocabulary-to-hidden ratio
    (~30x) so the embedding tables stay proportionate to the layer stack;
    otherwise embeddings dominate the memory profile in a way the full
    model's does not.
    """
    full_scale = cfg.bert_layers >= 24
    if full_scale:
        return build_bert(name="bert_bench")
    from repro.graphs.zoo.transformer import build_transformer

    return build_transformer(
        layers=cfg.bert_layers,
        hidden=cfg.bert_hidden,
        heads=cfg.bert_heads,
        seq=cfg.bert_seq,
        vocab=30 * cfg.bert_hidden,
        name="bert_bench",
    )


def calibrated_package(graph: CompGraph, n_chips: int, headroom: float = 1.3) -> MCMPackage:
    """Package whose SRAM fits balanced partitions with bounded headroom.

    Mirrors how the real platform behaves in paper Figure 7: balanced
    partitions compile, skewed ones hit the dynamic memory constraint.
    """
    probe = MemoryPlanner(n_chips, capacity_bytes=2**62)
    peak = probe.plan(graph, greedy_partition(graph, n_chips)).peak_bytes.max()
    return MCMPackage(n_chips=n_chips, chip=ChipSpec(sram_bytes=peak * headroom))


def analytical_env(graph: CompGraph, n_chips: int, baseline=None) -> PartitionEnvironment:
    """Environment on the analytical cost model (pre-training platform)."""
    package = MCMPackage(n_chips=n_chips)
    return PartitionEnvironment(
        graph, AnalyticalCostModel(package), n_chips, baseline_assignment=baseline
    )


def simulator_env(graph: CompGraph, n_chips: int, baseline=None) -> PartitionEnvironment:
    """Environment on the pipeline simulator (the "real hardware")."""
    package = calibrated_package(graph, n_chips)
    return PartitionEnvironment(
        graph, PipelineSimulator(package), n_chips, baseline_assignment=baseline
    )


def median_random_baseline(graph: CompGraph, n_chips: int, cost_model, k: int = 5):
    """The random-partition heuristic, de-noised: median-throughput draw.

    A single random draw has huge variance (it may land on a near-optimal
    or a terrible partition); the median of ``k`` draws is a fair
    representative of what the O(N) random heuristic delivers.
    """
    from repro.core.baselines import random_baseline_partition

    draws = [random_baseline_partition(graph, n_chips, seed=100 + i) for i in range(k)]
    throughputs = [cost_model.evaluate(graph, y).throughput for y in draws]
    order = np.argsort(throughputs)
    return draws[int(order[len(order) // 2])]


def pretrained_state(cfg: BenchConfig) -> dict:
    """Pre-trained policy weights for the bench scale (disk cached).

    Reproduces the paper's training phase: PPO on the training split with
    the analytical cost model, checkpoints validated on the validation
    split, best checkpoint returned.
    """
    CACHE_DIR.mkdir(exist_ok=True)
    key = f"pretrained_c{cfg.n_chips_small}_s{cfg.pretrain_samples}_g{cfg.pretrain_graphs}"
    path = CACHE_DIR / f"{key}.pkl"
    if path.exists():
        with open(path, "rb") as fh:
            return pickle.load(fh)

    dataset = build_dataset(seed=0)
    train = list(dataset.train[: cfg.pretrain_graphs])
    validation = list(dataset.validation[:2])

    partitioner = RLPartitioner(cfg.n_chips_small, config=rl_config(), rng=0)
    checkpoints = pretrain(
        partitioner,
        train,
        lambda g: analytical_env(g, cfg.n_chips_small),
        PretrainConfig(
            total_samples=cfg.pretrain_samples,
            n_checkpoints=max(cfg.pretrain_samples // 60, 2),
            samples_per_graph=20,
        ),
    )
    best = select_checkpoint(
        checkpoints,
        partitioner,
        validation,
        lambda g: analytical_env(g, cfg.n_chips_small),
        zero_shot_samples=3,
    )
    with open(path, "wb") as fh:
        pickle.dump(best.state, fh)
    return best.state


def bert_pretrained_state(cfg: BenchConfig) -> dict:
    """Pre-trained weights matching the BERT package's chip count."""
    if cfg.n_chips_bert == cfg.n_chips_small:
        return pretrained_state(cfg)
    CACHE_DIR.mkdir(exist_ok=True)
    key = (
        f"pretrained_c{cfg.n_chips_bert}_s{cfg.pretrain_samples}"
        f"_g{cfg.pretrain_graphs}"
    )
    path = CACHE_DIR / f"{key}.pkl"
    if path.exists():
        with open(path, "rb") as fh:
            return pickle.load(fh)
    dataset = build_dataset(seed=0)
    train = list(dataset.train[: cfg.pretrain_graphs])
    validation = list(dataset.validation[:2])
    partitioner = RLPartitioner(cfg.n_chips_bert, config=rl_config(), rng=0)
    checkpoints = pretrain(
        partitioner,
        train,
        lambda g: analytical_env(g, cfg.n_chips_bert),
        PretrainConfig(
            total_samples=cfg.pretrain_samples,
            n_checkpoints=max(cfg.pretrain_samples // 60, 2),
            samples_per_graph=20,
        ),
    )
    best = select_checkpoint(
        checkpoints,
        partitioner,
        validation,
        lambda g: analytical_env(g, cfg.n_chips_bert),
        zero_shot_samples=3,
    )
    with open(path, "wb") as fh:
        pickle.dump(best.state, fh)
    return best.state


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/series under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def five_methods(cfg: BenchConfig, n_chips: int, pretrained: dict):
    """The paper's five search arms as ``fn(env, n_samples)`` callables."""
    from repro.core.baselines import RandomSearch, SimulatedAnnealing
    from repro.core.finetune import fine_tune_search, zero_shot_search

    def rl(env, n):
        return RLPartitioner(n_chips, config=rl_config(), rng=0).search(env, n)

    def rl_zeroshot(env, n):
        p = RLPartitioner(n_chips, config=rl_config(), rng=1)
        return zero_shot_search(p, pretrained, env, n)

    def rl_finetune(env, n):
        p = RLPartitioner(n_chips, config=rl_config(), rng=2)
        return fine_tune_search(p, pretrained, env, n)

    return {
        "Random": lambda env, n: RandomSearch(rng=0).search(env, n),
        "SA": lambda env, n: SimulatedAnnealing(rng=0).search(env, n),
        "RL": rl,
        "RL Zeroshot": rl_zeroshot,
        "RL Finetuning": rl_finetune,
    }
