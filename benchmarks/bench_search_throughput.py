"""Search-loop throughput benchmark (samples/sec), the repo's perf guard.

The paper's pitch is sample- *and* wall-clock-efficient partitioning: 20k
pretraining samples in "a few hours on the analytical model".  That only
holds if the inference hot path — GraphSAGE encode, policy head, solver,
cost model — is not burning time on redundant work, so this bench times the
three loops every experiment sits on:

* **search** — `RLPartitioner.search` with PPO training on one graph,
* **pretrain** — the training worker across a graph rotation,
* **zeroshot** — frozen-policy checkpoint replay (`select_checkpoint`).

Run as a script (``python benchmarks/bench_search_throughput.py``); it
writes ``BENCH_search_throughput.json`` at the repo root so the trajectory
of samples/sec is recorded PR over PR.  ``REPRO_BENCH_SCALE`` scales the
budgets; ``--tiny`` forces the smallest configuration for CI smoke runs.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import bench_scale
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import PretrainConfig, pretrain, select_checkpoint
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.rl.ppo import PPOConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_search_throughput.json"

N_CHIPS = 4


def _partitioner(rng=0) -> RLPartitioner:
    cfg = RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        ppo=PPOConfig(n_rollouts=20, n_minibatches=4, n_epochs=10),
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


def _env(graph) -> PartitionEnvironment:
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


def _timed(n_samples: int, fn) -> dict:
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return {
        "samples": n_samples,
        "seconds": round(elapsed, 4),
        "samples_per_sec": round(n_samples / elapsed, 2),
    }


def bench_search(graphs, n_samples: int) -> dict:
    """PPO-training search loop on one graph (the fine-tune hot path)."""
    env = _env(graphs[0])
    partitioner = _partitioner(rng=0)
    return _timed(n_samples, lambda: partitioner.search(env, n_samples, train=True))


def bench_pretrain(graphs, n_samples: int) -> dict:
    """Training-worker rotation across graphs (paper Section 4.3)."""
    partitioner = _partitioner(rng=1)
    cfg = PretrainConfig(
        total_samples=n_samples,
        n_checkpoints=max(n_samples // 40, 2),
        samples_per_graph=20,
    )
    return _timed(
        n_samples, lambda: pretrain(partitioner, graphs, _env, cfg)
    )


def bench_solver_at_scale(scale) -> dict:
    """Constraint-solver sampling rate on a production-size transformer.

    The small-graph loops above are dominated by trajectory luck; this
    measures the solver alone on a BERT-flavoured graph at 8 chips, where
    the word-parallel propagation engine shows its asymptotics.
    """
    from repro.graphs.zoo.transformer import build_transformer
    from repro.solver.strategies import sample_partition

    import numpy as np

    layers = max(int(round(6 * scale.scale)), 2)
    graph = build_transformer(
        layers=min(layers, 24), hidden=256, heads=8, seq=128, vocab=7680,
        name="bert_bench",
    )
    n_chips = 8
    probs = np.full((graph.n_nodes, n_chips), 1.0 / n_chips)
    rng = np.random.default_rng(0)
    n_samples = max(int(round(4 * scale.scale)), 2)
    result = _timed(
        n_samples,
        lambda: [
            sample_partition(graph, probs, n_chips, rng=rng)
            for _ in range(n_samples)
        ],
    )
    result["graph"] = graph.name
    result["n_nodes"] = graph.n_nodes
    result["n_chips"] = n_chips
    return result


def bench_zeroshot(graphs, n_samples_per_pair: int) -> dict:
    """Frozen-policy checkpoint replay (the validation worker)."""
    partitioner = _partitioner(rng=2)
    checkpoints = pretrain(
        partitioner,
        graphs[:1],
        _env,
        PretrainConfig(total_samples=40, n_checkpoints=4, samples_per_graph=20),
    )
    total = len(checkpoints) * len(graphs) * n_samples_per_pair
    return _timed(
        total,
        lambda: select_checkpoint(
            checkpoints,
            partitioner,
            graphs,
            _env,
            zero_shot_samples=n_samples_per_pair,
            rng=0,
        ),
    )


def main(argv=None) -> dict:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    scale = bench_scale(0.05 if tiny else 1.0) if tiny else bench_scale()

    # The same training rotation the repo's pretrain benches use at scale 1
    # (benchmarks/common.py: dataset.train[:pretrain_graphs] with 6 graphs):
    # a representative mix of easy (mlp/cnn/autoencoder) and hard (gru/lstm,
    # where the triangle constraint back-tracks heavily) instances.
    dataset = build_dataset(seed=0)
    graphs = list(dataset.train[:6])

    results = {
        "bench": "search_throughput",
        "scale": scale.scale,
        "n_chips": N_CHIPS,
        "graphs": [g.name for g in graphs],
        "search": bench_search(graphs, scale.samples(60, cap=2000)),
        "pretrain": bench_pretrain(graphs, scale.samples(120, cap=4000)),
        "zeroshot": bench_zeroshot(graphs, max(scale.samples(8, cap=32) // 2, 2)),
        "solver_at_scale": bench_solver_at_scale(scale),
        # Pre-optimisation reference (seed commit 3ddcb26, this workload,
        # scale 1, medians over repeated runs on the PR-1 dev box): recorded
        # so the trajectory stays visible PR over PR.  All of these numbers
        # are trajectory-noisy — solver difficulty swings ~2.5x with the
        # policy seed and the box load drifts — so compare medians of
        # interleaved runs, not single shots.
        "seed_baseline_samples_per_sec": {
            "search": 118.0,
            "pretrain": 48.0,
            "zeroshot": 170.0,
            "solver_at_scale": 5.4,
        },
    }

    # The tiny CI smoke must not clobber the recorded scale-1 trajectory.
    out_path = (
        RESULT_PATH
        if not tiny
        else REPO_ROOT / "benchmarks" / "results" / "BENCH_search_throughput_tiny.json"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key in ("search", "pretrain", "zeroshot", "solver_at_scale"):
        r = results[key]
        print(
            f"{key:>15}: {r['samples']:5d} samples in {r['seconds']:8.3f}s"
            f"  -> {r['samples_per_sec']:8.2f} samples/sec"
        )
    return results


if __name__ == "__main__":
    main()
