"""Search-loop throughput benchmark (samples/sec), the repo's perf guard.

The paper's pitch is sample- *and* wall-clock-efficient partitioning: 20k
pretraining samples in "a few hours on the analytical model".  That only
holds if the inference hot path — GraphSAGE encode, policy head, solver,
cost model — is not burning time on redundant work, so this bench times the
three loops every experiment sits on:

* **search** — `RLPartitioner.search` with PPO training on one graph,
* **pretrain** — the training worker across a graph rotation,
* **zeroshot** — frozen-policy checkpoint replay (`select_checkpoint`).

A **workers sweep** additionally times every loop against the parallel
rollout pool (:mod:`repro.parallel`) at ``workers in {1, 2, 4}`` plus a
solver-bound "search at scale" workload (8-chip transformer), reporting
medians of interleaved runs; ``--workers N`` caps the sweep (0 skips it).

Run as a script (``python benchmarks/bench_search_throughput.py``); it
writes ``BENCH_search_throughput.json`` at the repo root so the trajectory
of samples/sec is recorded PR over PR.  ``REPRO_BENCH_SCALE`` scales the
budgets; ``--tiny`` forces the smallest configuration for CI smoke runs.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import os

from repro.bench.harness import bench_scale, interleaved_medians
from repro.obs.profile import PhaseTimer
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import PretrainConfig, pretrain, select_checkpoint
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.parallel import (
    ParallelConfig,
    parallel_pretrain,
    parallel_search,
    parallel_select_checkpoint,
)
from repro.rl.ppo import PPOConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_search_throughput.json"

N_CHIPS = 4


def _partitioner(rng=0, precision: str = "float64") -> RLPartitioner:
    cfg = RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        ppo=PPOConfig(n_rollouts=20, n_minibatches=4, n_epochs=10),
        precision=precision,
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


def _env(graph) -> PartitionEnvironment:
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


#: Interconnect all bench loops run on; recorded in every JSON row so the
#: samples/sec trajectory stays comparable when other topologies are benched.
TOPOLOGY = MCMPackage(n_chips=N_CHIPS).topology.name


def _timed(n_samples: int, fn, precision: str = "float64") -> dict:
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return {
        "samples": n_samples,
        "seconds": round(elapsed, 4),
        "samples_per_sec": round(n_samples / elapsed, 2),
        "topology": TOPOLOGY,
        "precision": precision,
    }


def bench_search(graphs, n_samples: int) -> dict:
    """PPO-training search loop on one graph (the fine-tune hot path).

    The row carries the library-side phase breakdown (repro.obs.profile):
    the partitioner attributes its own wall time to encoder / solver /
    rollout / ppo_update, so the JSON records where the window went without
    any bench-local monkeypatching.
    """
    env = _env(graphs[0])
    partitioner = _partitioner(rng=0)
    partitioner.profiler = PhaseTimer()
    row = _timed(
        n_samples, lambda: partitioner.search(env, n_samples, train=True)
    )
    row["phases"] = partitioner.profiler.breakdown(row["seconds"])
    return row


def bench_pretrain(graphs, n_samples: int) -> dict:
    """Training-worker rotation across graphs (paper Section 4.3)."""
    partitioner = _partitioner(rng=1)
    cfg = PretrainConfig(
        total_samples=n_samples,
        n_checkpoints=max(n_samples // 40, 2),
        samples_per_graph=20,
    )
    return _timed(
        n_samples, lambda: pretrain(partitioner, graphs, _env, cfg)
    )


def bench_solver_at_scale(scale) -> dict:
    """Constraint-solver sampling rate on a production-size transformer.

    The small-graph loops above are dominated by trajectory luck; this
    measures the solver alone on a BERT-flavoured graph at 8 chips, where
    the word-parallel propagation engine shows its asymptotics.
    """
    from repro.graphs.zoo.transformer import build_transformer
    from repro.solver.strategies import sample_partition

    import numpy as np

    layers = max(int(round(6 * scale.scale)), 2)
    graph = build_transformer(
        layers=min(layers, 24), hidden=256, heads=8, seq=128, vocab=7680,
        name="bert_bench",
    )
    n_chips = 8
    probs = np.full((graph.n_nodes, n_chips), 1.0 / n_chips)
    rng = np.random.default_rng(0)
    n_samples = max(int(round(4 * scale.scale)), 2)
    result = _timed(
        n_samples,
        lambda: [
            sample_partition(graph, probs, n_chips, rng=rng)
            for _ in range(n_samples)
        ],
    )
    result["graph"] = graph.name
    result["n_nodes"] = graph.n_nodes
    result["n_chips"] = n_chips
    return result


def _build_scale_workload(scale):
    """Search-at-scale workload: an 8-chip transformer, solver-bound.

    On production-size graphs the search loop is dominated by constraint
    solving and cost-model evaluation (the paper's BERT/8-chip regime — see
    the ``solver_at_scale`` row), which is exactly the regime the rollout
    pool parallelises across samples.
    """
    from repro.graphs.zoo.transformer import build_transformer

    layers = max(min(int(round(3 * scale.scale)), 8), 2)
    graph = build_transformer(
        layers=layers, hidden=256, heads=8, seq=128, vocab=7680,
        name="tf_scale_bench",
    )
    n_chips = 8
    cfg = RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        ppo=PPOConfig(n_rollouts=20, n_minibatches=4, n_epochs=10),
    )
    package = MCMPackage(n_chips=n_chips)

    def make_env():
        return PartitionEnvironment(graph, AnalyticalCostModel(package), n_chips)

    def make_partitioner():
        return RLPartitioner(n_chips, config=cfg, rng=0)

    return graph, make_env, make_partitioner


def bench_workers_sweep(graphs, scale, worker_counts, n_repeats: int) -> dict:
    """Scaling sweep: every loop at ``workers in worker_counts`` vs serial.

    Each cell reports the median samples/sec of ``n_repeats`` interleaved
    runs (ROADMAP methodology).  ``workers1`` is the *parallel code path*
    executed in-process (the serial fallback); ``serial`` is the plain
    single-stream path.  Pool start-up (fork) is included in the timings —
    it is a real cost of the parallel path at these budgets.
    """
    search_n = scale.samples(60, cap=2000)
    pretrain_n = scale.samples(120, cap=4000)
    zeroshot_per_pair = max(scale.samples(8, cap=32) // 2, 2)
    at_scale_n = scale.samples(30, cap=120)

    def timed(n, fn):
        return _timed(n, fn)["samples_per_sec"]

    # -- search (train=True, one small graph: PPO-bound at this size) ----
    def mk_search(workers):
        def run():
            env = _env(graphs[0])
            partitioner = _partitioner(rng=0)
            if workers == 0:
                return timed(search_n, lambda: partitioner.search(env, search_n))
            cfg = ParallelConfig(n_workers=workers, seed=0)
            return timed(
                search_n,
                lambda: parallel_search(partitioner, env, search_n, config=cfg),
            )
        return run

    # -- pretrain rotation ----------------------------------------------
    pre_cfg = PretrainConfig(
        total_samples=pretrain_n,
        n_checkpoints=max(pretrain_n // 40, 2),
        samples_per_graph=20,
    )

    def mk_pretrain(workers):
        def run():
            partitioner = _partitioner(rng=1)
            if workers == 0:
                return timed(
                    pretrain_n, lambda: pretrain(partitioner, graphs, _env, pre_cfg)
                )
            cfg = ParallelConfig(n_workers=workers, seed=1)
            return timed(
                pretrain_n,
                lambda: parallel_pretrain(
                    partitioner, graphs, _env, pre_cfg, parallel=cfg
                ),
            )
        return run

    # -- zero-shot checkpoint replay (no PPO: embarrassingly parallel) ---
    replay_partitioner = _partitioner(rng=2)
    replay_ckpts = pretrain(
        replay_partitioner,
        graphs[:1],
        _env,
        PretrainConfig(total_samples=40, n_checkpoints=4, samples_per_graph=20),
    )
    zeroshot_total = len(replay_ckpts) * len(graphs) * zeroshot_per_pair

    def mk_zeroshot(workers):
        def run():
            if workers == 0:
                return timed(
                    zeroshot_total,
                    lambda: select_checkpoint(
                        replay_ckpts, replay_partitioner, graphs, _env,
                        zero_shot_samples=zeroshot_per_pair, rng=0,
                    ),
                )
            cfg = ParallelConfig(n_workers=workers, seed=2)
            return timed(
                zeroshot_total,
                lambda: parallel_select_checkpoint(
                    replay_ckpts, replay_partitioner, graphs, _env,
                    zero_shot_samples=zeroshot_per_pair, config=cfg,
                ),
            )
        return run

    # -- search at scale (8-chip transformer: solver/env-bound) ----------
    scale_graph, make_scale_env, make_scale_partitioner = _build_scale_workload(scale)

    def mk_at_scale(workers):
        def run():
            env = make_scale_env()
            partitioner = make_scale_partitioner()
            if workers == 0:
                return timed(
                    at_scale_n, lambda: partitioner.search(env, at_scale_n)
                )
            cfg = ParallelConfig(n_workers=workers, seed=3)
            return timed(
                at_scale_n,
                lambda: parallel_search(partitioner, env, at_scale_n, config=cfg),
            )
        return run

    sweep = {}
    for name, mk in (
        ("search", mk_search),
        ("pretrain", mk_pretrain),
        ("zeroshot", mk_zeroshot),
        ("search_at_scale", mk_at_scale),
    ):
        runs = {"serial": mk(0)}
        for w in worker_counts:
            runs[f"workers{w}"] = mk(w)
        sweep[name] = interleaved_medians(runs, n_repeats)

    speedups = {
        name: {
            cfg: round(cell["median"] / cells["serial"]["median"], 3)
            for cfg, cell in cells.items()
            if cfg != "serial"
        }
        for name, cells in sweep.items()
    }
    return {
        "cpu_count": os.cpu_count(),
        "worker_counts": list(worker_counts),
        "n_repeats": n_repeats,
        "budgets": {
            "search": search_n,
            "pretrain": pretrain_n,
            "zeroshot": zeroshot_total,
            "search_at_scale": at_scale_n,
        },
        "at_scale_graph": {
            "name": scale_graph.name,
            "n_nodes": scale_graph.n_nodes,
            "n_chips": 8,
        },
        "sweep": sweep,
        "speedup_vs_serial": speedups,
        "note": (
            "medians of interleaved runs; workersN requires >= N idle cores "
            "to show scaling — on a single-core box the sweep validates "
            "determinism and bounds pool overhead instead"
        ),
    }


def bench_precision_sweep(graphs, scale, n_repeats: int) -> dict:
    """float64 vs float32 backend on the three serial loops (PR 8 tentpole).

    Each cell is the median samples/sec of ``n_repeats`` interleaved runs
    (same methodology as the workers sweep).  The search cells additionally
    record PPO's share of wall time — the fused float32 kernels attack the
    PPO update, so the share dropping is the direct signature of the
    optimisation (the residue is solver + cost model, precision-agnostic).

    The search cell uses a longer window than the headline ``search`` row:
    the first PPO window (20 samples) runs before any update, and
    featurise/solver warm-up is precision-agnostic, so a 60-sample shot
    understates the steady-state kernel speedup the sweep tracks.
    """
    search_n = scale.samples(200, cap=2000)
    pretrain_n = scale.samples(120, cap=4000)
    zeroshot_per_pair = max(scale.samples(8, cap=32) // 2, 2)

    ppo_shares: dict[str, list] = {"float64": [], "float32": []}
    phase_rows: dict[str, list] = {"float64": [], "float32": []}

    def mk_search(precision):
        def run():
            env = _env(graphs[0])
            partitioner = _partitioner(rng=0, precision=precision)
            # Library-side attribution (repro.obs.profile): the partitioner
            # times its own ppo_update at the hook site, replacing the old
            # trainer.update monkeypatch with the shared PhaseTimer.
            timer = PhaseTimer()
            partitioner.profiler = timer
            start = time.perf_counter()
            partitioner.search(env, search_n)
            elapsed = time.perf_counter() - start
            info = timer.breakdown(elapsed)
            ppo_shares[precision].append(
                info["shares"].get("ppo_update", 0.0)
            )
            phase_rows[precision].append(info)
            return search_n / elapsed
        return run

    def mk_pretrain(precision):
        pre_cfg = PretrainConfig(
            total_samples=pretrain_n,
            n_checkpoints=max(pretrain_n // 40, 2),
            samples_per_graph=20,
        )

        def run():
            partitioner = _partitioner(rng=1, precision=precision)
            return _timed(
                pretrain_n,
                lambda: pretrain(partitioner, graphs, _env, pre_cfg),
                precision=precision,
            )["samples_per_sec"]
        return run

    def mk_zeroshot(precision):
        def run():
            partitioner = _partitioner(rng=2, precision=precision)
            checkpoints = pretrain(
                partitioner,
                graphs[:1],
                _env,
                PretrainConfig(
                    total_samples=40, n_checkpoints=4, samples_per_graph=20
                ),
            )
            total = len(checkpoints) * len(graphs) * zeroshot_per_pair
            return _timed(
                total,
                lambda: select_checkpoint(
                    checkpoints, partitioner, graphs, _env,
                    zero_shot_samples=zeroshot_per_pair, rng=0,
                ),
                precision=precision,
            )["samples_per_sec"]
        return run

    sweep = {}
    for name, mk in (
        ("search", mk_search),
        ("pretrain", mk_pretrain),
        ("zeroshot", mk_zeroshot),
    ):
        sweep[name] = interleaved_medians(
            {p: mk(p) for p in ("float64", "float32")}, n_repeats
        )
    speedups = {
        name: round(cells["float32"]["median"] / cells["float64"]["median"], 3)
        for name, cells in sweep.items()
    }
    import numpy as np

    return {
        "n_repeats": n_repeats,
        "budgets": {
            "search": search_n,
            "pretrain": pretrain_n,
            "zeroshot_per_pair": zeroshot_per_pair,
        },
        "sweep": sweep,
        "float32_speedup": speedups,
        "ppo_wall_share": {
            p: float(np.median(v)) if v else None for p, v in ppo_shares.items()
        },
        "phase_breakdown": {
            p: (rows[-1] if rows else None) for p, rows in phase_rows.items()
        },
        "note": (
            "medians of interleaved runs; float64 is the frozen bit-for-bit "
            "default, float32 enables the fused-GEMM kernels (wide SAGE hop, "
            "tiled policy head, flat Adam) — equivalence is pinned by "
            "tests/core/test_precision_equivalence.py"
        ),
    }


def bench_zeroshot(graphs, n_samples_per_pair: int) -> dict:
    """Frozen-policy checkpoint replay (the validation worker)."""
    partitioner = _partitioner(rng=2)
    checkpoints = pretrain(
        partitioner,
        graphs[:1],
        _env,
        PretrainConfig(total_samples=40, n_checkpoints=4, samples_per_graph=20),
    )
    total = len(checkpoints) * len(graphs) * n_samples_per_pair
    return _timed(
        total,
        lambda: select_checkpoint(
            checkpoints,
            partitioner,
            graphs,
            _env,
            zero_shot_samples=n_samples_per_pair,
            rng=0,
        ),
    )


def main(argv=None) -> dict:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    max_workers = 4
    if "--workers" in argv:
        try:
            max_workers = int(argv[argv.index("--workers") + 1])
        except (IndexError, ValueError):
            raise SystemExit(
                "usage: bench_search_throughput.py [--tiny] [--workers N]"
            ) from None
    scale = bench_scale(0.05 if tiny else 1.0) if tiny else bench_scale()

    # The same training rotation the repo's pretrain benches use at scale 1
    # (benchmarks/common.py: dataset.train[:pretrain_graphs] with 6 graphs):
    # a representative mix of easy (mlp/cnn/autoencoder) and hard (gru/lstm,
    # where the triangle constraint back-tracks heavily) instances.
    dataset = build_dataset(seed=0)
    graphs = list(dataset.train[:6])

    results = {
        "bench": "search_throughput",
        "scale": scale.scale,
        "n_chips": N_CHIPS,
        "topology": TOPOLOGY,
        "graphs": [g.name for g in graphs],
        "search": bench_search(graphs, scale.samples(60, cap=2000)),
        "pretrain": bench_pretrain(graphs, scale.samples(120, cap=4000)),
        "zeroshot": bench_zeroshot(graphs, max(scale.samples(8, cap=32) // 2, 2)),
        "solver_at_scale": bench_solver_at_scale(scale),
        # Pre-optimisation reference (seed commit 3ddcb26, this workload,
        # scale 1, medians over repeated runs on the PR-1 dev box): recorded
        # so the trajectory stays visible PR over PR.  All of these numbers
        # are trajectory-noisy — solver difficulty swings ~2.5x with the
        # policy seed and the box load drifts — so compare medians of
        # interleaved runs, not single shots.
        "seed_baseline_samples_per_sec": {
            "search": 118.0,
            "pretrain": 48.0,
            "zeroshot": 170.0,
            "solver_at_scale": 5.4,
        },
    }

    # Workers scaling sweep (PR 2): parallel rollout pool vs the serial
    # path, medians of interleaved runs.  ``--workers N`` caps the sweep
    # (``--workers 0`` skips it); the tiny CI smoke keeps one repeat.
    # Precision sweep (PR 8): float64 serial reference vs the float32
    # fused-GEMM backend on the three serial loops, medians of interleaved
    # runs plus PPO's share of search wall time at each precision.  Five
    # repeats (not three): the sweep's product is a *ratio* between
    # adjacent cells, which is more sensitive to box drift than the
    # absolute rows.  Runs *before* the fork-heavy workers sweep: pool
    # fan-out leaves the allocator fragmented, which measurably penalises
    # the fused float32 kernels' wide concat temporaries (~10% on the
    # PR-8 box) and would skew the ratio.
    results["precision"] = bench_precision_sweep(
        graphs, scale, n_repeats=1 if tiny else 5
    )

    worker_counts = [w for w in (1, 2, 4) if w <= max_workers]
    if worker_counts:
        results["parallel"] = bench_workers_sweep(
            graphs, scale, worker_counts, n_repeats=1 if tiny else 3
        )

    # The tiny CI smoke must not clobber the recorded scale-1 trajectory.
    out_path = (
        RESULT_PATH
        if not tiny
        else REPO_ROOT / "benchmarks" / "results" / "BENCH_search_throughput_tiny.json"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key in ("search", "pretrain", "zeroshot", "solver_at_scale"):
        r = results[key]
        print(
            f"{key:>15}: {r['samples']:5d} samples in {r['seconds']:8.3f}s"
            f"  -> {r['samples_per_sec']:8.2f} samples/sec"
        )
    if "parallel" in results:
        par = results["parallel"]
        print(f"workers sweep (cpus={par['cpu_count']}, medians of "
              f"{par['n_repeats']} interleaved runs):")
        for loop, cells in par["sweep"].items():
            row = "  ".join(
                f"{cfg}={cell['median']:8.2f}/s" for cfg, cell in cells.items()
            )
            print(f"{loop:>15}: {row}")
    prec = results["precision"]
    print(f"precision sweep (medians of {prec['n_repeats']} interleaved runs):")
    for loop, cells in prec["sweep"].items():
        row = "  ".join(
            f"{cfg}={cell['median']:8.2f}/s" for cfg, cell in cells.items()
        )
        print(
            f"{loop:>15}: {row}  (f32 speedup "
            f"{prec['float32_speedup'][loop]:.2f}x)"
        )
    print(f"{'ppo share':>15}: " + "  ".join(
        f"{p}={s}" for p, s in prec["ppo_wall_share"].items()
    ))
    return results


if __name__ == "__main__":
    main()
