"""Table 3: samples to reach improvement thresholds on BERT.

Reproduces the paper's Table 3: samples needed by each method to reach
fixed throughput-improvement levels on BERT ("real hardware"), with the
reduction factor relative to RL-from-scratch (paper: fine-tuning reduces
samples by up to 21.15x; Random/SA never reach the top thresholds).
"""

import numpy as np

from repro.bench.tables import samples_to_threshold_table

from .bench_fig6_bert import _run_fig6
from .common import write_result


def bench_table3_bert_sample_efficiency(benchmark):
    """Regenerate Table 3 from the Figure 6 series."""
    cfg, graph, series = benchmark.pedantic(_run_fig6, rounds=1, iterations=1)

    # Threshold ladder anchored on the strongest learned arm's plateau
    # (the paper's 2.55/2.60/2.65x, rescaled to this platform).
    anchor = max(series["RL"][-1], series["RL Finetuning"][-1])
    thresholds = [round(anchor * f, 3) for f in (0.90, 0.95, 1.00)]

    table = samples_to_threshold_table(
        {name: curve for name, curve in series.items()},
        thresholds,
        reference_method="RL",
        title=(
            "Table 3 (reproduced): samples to reach BERT improvement "
            f"thresholds (scale {cfg.scale})"
        ),
    )
    write_result("table3_bert_sample_efficiency", table)

    def to_reach(curve, t):
        hits = np.flatnonzero(curve >= t)
        return int(hits[0]) + 1 if hits.size else None

    # Shape: the fine-tuned policy reaches the lowest threshold within the
    # budget and at most modestly later than from-scratch RL.
    ft = to_reach(series["RL Finetuning"], thresholds[0])
    rl = to_reach(series["RL"], thresholds[0])
    assert ft is not None
    if rl is not None:
        assert ft <= rl * 1.5, (ft, rl)
