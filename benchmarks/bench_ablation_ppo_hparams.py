"""Ablation: PPO hyper-parameters (rollouts / minibatches / epochs).

The paper (Section 5.1) explored rollout counts, minibatch counts, and
epoch counts, settling on (20, 4, 10).  This bench sweeps a small grid
around that point and records the final search quality of each setting.
"""

import numpy as np

from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_dataset
from repro.rl.ppo import PPOConfig

from .common import analytical_env, get_bench_config, write_result

#: (n_rollouts, n_minibatches, n_epochs) grid around the paper's choice
GRID = [
    (20, 4, 10),  # the paper's tuned setting
    (10, 2, 10),
    (20, 4, 4),
    (40, 4, 10),
]


def _run_sweep():
    cfg = get_bench_config()
    graph = build_dataset(seed=0).test[0]
    budget = cfg.testset_samples * 2

    results = {}
    for rollouts, minibatches, epochs in GRID:
        ppo = PPOConfig(
            n_rollouts=rollouts, n_minibatches=minibatches, n_epochs=epochs
        )
        rl_cfg = RLPartitionerConfig(hidden=64, n_sage_layers=4, ppo=ppo)
        env = analytical_env(graph, cfg.n_chips_small)
        partitioner = RLPartitioner(cfg.n_chips_small, config=rl_cfg, rng=0)
        result = partitioner.search(env, budget)
        results[(rollouts, minibatches, epochs)] = result
    return cfg, graph, budget, results


def bench_ablation_ppo_hparams(benchmark):
    """Sweep PPO hyper-parameters around the paper's setting."""
    cfg, graph, budget, results = benchmark.pedantic(
        _run_sweep, rounds=1, iterations=1
    )

    lines = [
        "Ablation (reproduced): PPO hyper-parameters",
        f"graph: {graph.name}, chips: {cfg.n_chips_small}, "
        f"budget: {budget}, scale: {cfg.scale}",
        "",
        f"{'rollouts':>8} {'minibatch':>9} {'epochs':>6} {'best':>8} {'mean-last':>10}",
    ]
    for (r, m, e), result in results.items():
        tail = result.improvements[-max(budget // 4, 1):].mean()
        lines.append(
            f"{r:>8} {m:>9} {e:>6} {result.best_improvement:>7.3f}x {tail:>9.3f}x"
        )
    write_result("ablation_ppo_hparams", "\n".join(lines))

    for result in results.values():
        assert result.best_improvement > 0
