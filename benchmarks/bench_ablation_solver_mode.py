"""Ablation: FIX vs SAMPLE solver strategies inside the RL loop.

The paper (Section 5.1) reports using FIX mode "as it outperforms SAMPLE
mode" on CP-SAT.  This ablation regenerates that comparison on this repo's
solver, plus the "RL without constraint solver" arm, which the paper reports
never finds a valid partition.
"""

import numpy as np

from repro.core.partitioner import RLPartitioner, RLPartitionerConfig

from .common import get_bench_config, rl_config, scaled_bert, simulator_env, write_result


def _run_ablation():
    cfg = get_bench_config()
    graph = scaled_bert(cfg)
    n = cfg.bert_samples
    base = rl_config()

    results = {}
    for mode in ("sample", "fix"):
        mode_cfg = RLPartitionerConfig(
            hidden=base.hidden,
            n_sage_layers=base.n_sage_layers,
            solver_mode=mode,
            ppo=base.ppo,
        )
        env = simulator_env(graph, cfg.n_chips_bert)
        partitioner = RLPartitioner(cfg.n_chips_bert, config=mode_cfg, rng=0)
        results[f"RL+{mode.upper()}"] = partitioner.search(env, n)

    env = simulator_env(graph, cfg.n_chips_bert)
    partitioner = RLPartitioner(cfg.n_chips_bert, config=base, rng=0)
    results["RL w/o solver"] = partitioner.search(env, n, use_solver=False)
    return cfg, graph, results


def bench_ablation_solver_mode(benchmark):
    """Compare SAMPLE / FIX / no-solver RL arms."""
    cfg, graph, results = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    lines = [
        "Ablation (reproduced): solver strategy inside the RL loop",
        f"graph: {graph.name}, chips: {cfg.n_chips_bert}, "
        f"budget: {cfg.bert_samples}, scale: {cfg.scale}",
        "",
        f"{'arm':<16} {'best':>8} {'valid-rate':>11}",
    ]
    for name, result in results.items():
        valid_rate = float((result.improvements > 0).mean())
        lines.append(
            f"{name:<16} {result.best_improvement:>7.3f}x {valid_rate:>10.1%}"
        )
    write_result("ablation_solver_mode", "\n".join(lines))

    # Paper Section 5.1: without the solver, RL finds (almost) nothing.
    no_solver = results["RL w/o solver"]
    assert (no_solver.improvements > 0).mean() < 0.05
    # With the solver, every sample is statically valid (improvement > 0
    # unless the dynamic constraint rejects it).
    for mode in ("RL+SAMPLE", "RL+FIX"):
        assert (results[mode].improvements > 0).mean() > 0.5
