"""Figure 5: geomean throughput improvement vs samples on the test set.

Reproduces the paper's Figure 5: five methods (Random, SA, RL from scratch,
RL Zeroshot, RL Finetuning) searching partitions for held-out zoo graphs on
the **analytical cost model**, reported as the geometric-mean best-so-far
improvement over a fast compiler heuristic (the random-partition baseline of
Section 5.1).

Paper shape to reproduce: RL-family curves sit above Random/SA; zero-shot
is strongest at tiny budgets but plateaus; fine-tuning dominates.
"""

import numpy as np

from repro.bench.harness import geomean_curves, run_methods
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage

from .common import (
    analytical_env,
    five_methods,
    get_bench_config,
    median_random_baseline,
    pretrained_state,
    write_result,
)


def _run_fig5():
    cfg = get_bench_config()
    dataset = build_dataset(seed=0)
    graphs = list(dataset.test[: cfg.n_test_graphs])
    pretrained = pretrained_state(cfg)
    methods = five_methods(cfg, cfg.n_chips_small, pretrained)
    model = AnalyticalCostModel(MCMPackage(n_chips=cfg.n_chips_small))

    curves = []
    for graph in graphs:
        baseline = median_random_baseline(graph, cfg.n_chips_small, model)
        curves.extend(
            run_methods(
                {name: fn for name, fn in methods.items()},
                lambda: analytical_env(graph, cfg.n_chips_small, baseline=baseline),
                cfg.testset_samples,
                graph_name=graph.name,
            )
        )
    series = {
        name: geomean_curves(curves, name) for name in methods
    }
    return cfg, series


def bench_fig5_test_set(benchmark):
    """Regenerate Figure 5 and record the geomean series."""
    cfg, series = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)

    checkpoints = sorted(
        {
            max(1, cfg.testset_samples // 8),
            cfg.testset_samples // 4,
            cfg.testset_samples // 2,
            cfg.testset_samples,
        }
    )
    lines = [
        "Figure 5 (reproduced): geomean best-so-far throughput improvement",
        f"test graphs: {cfg.n_test_graphs}, chips: {cfg.n_chips_small}, "
        f"budget: {cfg.testset_samples} samples, scale: {cfg.scale}",
        "",
        "method          " + "".join(f"@{c:>6} " for c in checkpoints),
    ]
    for name, curve in series.items():
        row = "".join(f"{curve[c - 1]:>7.3f} " for c in checkpoints)
        lines.append(f"{name:<15} {row}")
    write_result("fig5_test_set", "\n".join(lines))

    # Shape assertions (paper Figure 5).  At default scale (few graphs,
    # small budgets) individual orderings are noisy, so these encode the
    # paper's robust claims: everyone beats the heuristic, the learned
    # family is competitive, and pre-training transfers.
    final = {name: curve[-1] for name, curve in series.items()}
    assert all(v > 1.0 for v in final.values()), final
    best_unlearned = max(final["Random"], final["SA"])
    best_rl = max(final["RL"], final["RL Finetuning"], final["RL Zeroshot"])
    assert best_rl >= 0.9 * best_unlearned, final
    # Transfer must not hurt: the better transfer arm matches from-scratch.
    assert max(final["RL Finetuning"], final["RL Zeroshot"]) >= 0.95 * final["RL"], final
