"""Cost-model calibration study (paper Section 5.4 / Figure 7).

Draws random solver-valid partitions of a scaled BERT, scores each on the
analytical cost model and on the pipeline simulator, and reports the
correlation, the hardware-failure rate, and the false-positive pattern the
paper highlights (partitions that look fast analytically but stall on
hardware).

Run:  python examples/cost_model_study.py [--samples N]
"""

import argparse

import numpy as np

from repro import MCMPackage
from repro.graphs.zoo.transformer import build_transformer
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MemoryPlanner
from repro.hardware.noise import PerturbationModel
from repro.hardware.simulator import PipelineSimulator
from repro.solver.strategies import sample_partition, topo_prior


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=120)
    args = parser.parse_args()

    # Scaled BERT with the full model's vocab-to-hidden proportion, so the
    # memory profile stays representative.
    graph = build_transformer(layers=3, hidden=256, heads=8, seq=128,
                              vocab=30 * 256, name="bert_study")
    n_chips = 8
    rng = np.random.default_rng(0)

    # Partitions across the balance spectrum: sharp priors give balanced
    # contiguous placements, flat priors give scattered ones.
    def draw():
        conc = float(rng.uniform(0.5, 6.0))
        probs = topo_prior(graph, n_chips, concentration=conc)
        return sample_partition(graph, probs, n_chips, rng=rng)

    samples = [draw() for _ in range(args.samples)]

    # Size SRAM so the dynamic constraint binds for the most skewed tail.
    probe = MemoryPlanner(n_chips, capacity_bytes=2**62)
    peaks = np.array([probe.plan(graph, y).peak_bytes.max() for y in samples])
    capacity = float(np.quantile(peaks, 0.9))
    package = MCMPackage(n_chips=n_chips, chip=ChipSpec(sram_bytes=capacity))

    analytical = AnalyticalCostModel(package)
    # Amplified systematic perturbations stand in for the analytical/
    # hardware gap of the paper's platform.
    simulator = PipelineSimulator(
        package,
        perturbation=PerturbationModel(
            op_amplitude=0.2, chip_amplitude=0.08, category_amplitude=0.12
        ),
        op_overhead_us=2.0,
    )

    predicted, measured = [], []
    failures = 0
    for y in samples:
        a = analytical.evaluate(graph, y)
        s = simulator.evaluate(graph, y)
        if not s.valid:
            failures += 1
            continue
        predicted.append(a.runtime_us)
        measured.append(s.runtime_us)

    predicted = np.array(predicted)
    measured = np.array(measured)
    pearson = np.corrcoef(predicted, measured)[0, 1]

    print(graph.summary())
    print(f"\nsamples: {args.samples}, chip SRAM: {capacity / 2**20:.1f} MiB")
    print(f"failed on 'hardware' (dynamic constraint): "
          f"{failures / args.samples:.1%}   (paper: 13.5%)")
    print(f"Pearson R (predicted vs measured runtime): "
          f"{pearson:.3f}   (paper: 0.91)")

    # False positives: among the analytically fastest quartile, how much
    # does measured runtime spread?
    order = np.argsort(predicted)
    q = max(len(order) // 4, 1)
    fast = order[:q]
    spread = measured[fast].max() / measured[fast].min()
    print(f"measured-runtime spread within the analytically fastest quartile: "
          f"{spread:.2f}x (false positives; cf. the paper's red circle)")


if __name__ == "__main__":
    main()
