"""Tour of the MCM placement constraints (paper Figure 2).

Builds the 5-node example graph from the paper and walks each constraint:
the valid partition, the acyclic-dataflow violation (2c), the chip-skipping
violation (2d), the triangle-dependency violation (2e), and the dynamic
memory violation (2f) — then shows the constraint solver repairing an
invalid candidate.

Run:  python examples/constraints_tour.py
"""

import numpy as np

from repro import GraphBuilder, OpType, fix_partition, validate_partition
from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MemoryPlanner


def build_figure2_graph():
    """The computation graph of paper Figure 2a."""
    b = GraphBuilder("figure2a")
    n0 = b.add_node("op0", OpType.INPUT, compute_us=1.0, output_bytes=1024)
    n1 = b.add_node("op1", OpType.MATMUL, compute_us=4.0, output_bytes=1024,
                    param_bytes=4096, inputs=[n0])
    n2 = b.add_node("op2", OpType.MATMUL, compute_us=4.0, output_bytes=1024,
                    param_bytes=4096, inputs=[n0])
    n3 = b.add_node("op3", OpType.RELU, compute_us=1.0, output_bytes=1024,
                    inputs=[n1])
    b.add_node("op4", OpType.ADD, compute_us=1.0, output_bytes=1024,
               inputs=[n2, n3])
    return b.build()


def show(graph, title, assignment, n_chips):
    report = validate_partition(graph, np.array(assignment), n_chips)
    status = "VALID" if report.ok else f"INVALID ({', '.join(report.violated)})"
    print(f"{title:<42} f = {assignment}  ->  {status}")
    return report


def main() -> None:
    graph = build_figure2_graph()
    print("Figure 2a graph:", graph.summary(), "\n", sep="\n")

    n_chips = 3
    show(graph, "balanced pipeline (valid)", [0, 0, 1, 1, 2], n_chips)
    show(graph, "Fig 2c: backward transfer (op2->op4)", [0, 0, 1, 0, 0], n_chips)
    show(graph, "Fig 2d: chip 1 skipped", [0, 0, 0, 2, 2], n_chips)
    show(graph, "Fig 2e: triangle dependency", [0, 1, 2, 1, 2], n_chips)

    # Fig 2f: the dynamic constraint H(G, f) -- needs the memory planner.
    print("\nFig 2f: dynamic memory constraint")
    planner = MemoryPlanner(n_chips=2, capacity_bytes=6 * 1024)
    crowded = np.array([0, 1, 1, 1, 1])  # everything with params on chip 1
    report = planner.plan(graph, crowded)
    print(f"  peaks per chip: {report.peak_bytes.tolist()} bytes, "
          f"capacity {planner.capacity_bytes:.0f} -> fits: {report.ok}")

    # The constraint solver repairs an invalid candidate (Algorithm 2).
    print("\nFIX-mode repair of the Fig 2e candidate:")
    candidate = np.array([0, 1, 2, 1, 2])
    repaired = fix_partition(graph, candidate, n_chips, rng=0)
    kept = int((repaired == candidate).sum())
    print(f"  candidate: {candidate.tolist()}")
    print(f"  repaired:  {repaired.tolist()}   ({kept}/5 values kept)")
    print(f"  valid: {validate_partition(graph, repaired, n_chips).ok}")


if __name__ == "__main__":
    main()
