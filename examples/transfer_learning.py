"""Transfer learning: pre-train on the zoo, fine-tune on an unseen graph.

A miniature rendition of the paper's Figure 4 workflow and Section 5.2
evaluation: pre-train the policy on training graphs with the analytical
cost model, pick the best checkpoint on the validation split, then compare
zero-shot, fine-tuning, and from-scratch RL on a held-out test graph.

Run:  python examples/transfer_learning.py
"""

import time

import numpy as np

from repro import (
    AnalyticalCostModel,
    MCMPackage,
    PartitionEnvironment,
    RLPartitioner,
    RLPartitionerConfig,
    build_dataset,
    fine_tune_search,
    pretrain,
    random_baseline_partition,
    select_checkpoint,
    zero_shot_search,
)
from repro.core.pretrain import PretrainConfig
from repro.rl.ppo import PPOConfig


def main() -> None:
    n_chips = 4
    package = MCMPackage(n_chips=n_chips)
    dataset = build_dataset(seed=0)
    train_graphs = list(dataset.train[:6])
    val_graphs = list(dataset.validation[:2])
    test_graph = dataset.test[1]

    def env_factory(graph):
        # Improvements over the O(N) random-partition heuristic, as in the
        # paper's test-set evaluation (Section 5.1 / Figure 5).
        return PartitionEnvironment(
            graph,
            AnalyticalCostModel(package),
            n_chips,
            baseline_assignment=random_baseline_partition(graph, n_chips, seed=123),
        )

    config = RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=4),
    )

    # ---- training phase (Figure 4, left) ----
    print(f"pre-training on {len(train_graphs)} graphs ...")
    partitioner = RLPartitioner(n_chips, config=config, rng=0)
    start = time.time()
    checkpoints = pretrain(
        partitioner, train_graphs, env_factory,
        PretrainConfig(total_samples=600, n_checkpoints=10, samples_per_graph=20),
        progress=lambda done, r: (
            print(f"  {done:4d} samples, mean improvement {r:.3f}x")
            if done % 100 == 0 else None
        ),
    )
    print(f"pre-training took {time.time() - start:.1f}s; "
          f"{len(checkpoints)} checkpoints")

    best = select_checkpoint(
        checkpoints, partitioner, val_graphs, env_factory, zero_shot_samples=3
    )
    print(f"validation picked checkpoint @ step {best.step} "
          f"(score {best.score:.3f}x)\n")

    # ---- deployment phase (Figure 4, right) ----
    budget = 40
    print(f"deploying on unseen graph {test_graph.name!r} "
          f"({test_graph.n_nodes} nodes), budget {budget} samples:")

    zs = zero_shot_search(partitioner, best.state, env_factory(test_graph), budget)
    ft = fine_tune_search(partitioner, best.state, env_factory(test_graph), budget)
    scratch = RLPartitioner(n_chips, config=config, rng=1).search(
        env_factory(test_graph), budget
    )

    rows = [("RL Zeroshot", zs), ("RL Finetuning", ft), ("RL from scratch", scratch)]
    print(f"\n{'method':<16} {'best':>8} {'@10 samples':>12}")
    for name, result in rows:
        at10 = result.best_so_far()[min(9, result.n_samples - 1)]
        print(f"{name:<16} {result.best_improvement:>7.3f}x {at10:>11.3f}x")
    print("\n(the paper's Tables 2/3 report the same comparison as samples-to-")
    print(" threshold; fine-tuning should dominate at small budgets)")


if __name__ == "__main__":
    main()
