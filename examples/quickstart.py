"""Quickstart: partition a small model onto a 4-chiplet MCM package.

Demonstrates the three-line workflow: build a graph, wrap a platform in an
environment, run the constrained-RL search.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AnalyticalCostModel,
    MCMPackage,
    PartitionEnvironment,
    RLPartitioner,
    RLPartitionerConfig,
    build_bert,
    random_baseline_partition,
    validate_partition,
)
from repro.rl.ppo import PPOConfig


def main() -> None:
    # 1. The workload: a small transformer at op granularity.  Transformer
    # layers mix heavy matmuls with cheap elementwise ops, which is exactly
    # where the production compiler's count-balanced heuristic loses.
    graph = build_bert(layers=2, hidden=256, heads=8, seq=128,
                       target_nodes=None, name="demo_transformer")
    print(graph.summary())

    # 2. The platform: a 4-chiplet package scored by the analytical model.
    # Improvements are measured over the O(N) random-partition heuristic,
    # as in the paper's test-set evaluation (Section 5.1 / Figure 5).
    package = MCMPackage(n_chips=4)
    env = PartitionEnvironment(
        graph,
        AnalyticalCostModel(package),
        package.n_chips,
        baseline_assignment=random_baseline_partition(graph, package.n_chips, seed=1),
    )
    print(f"\nrandom-heuristic baseline throughput: {env.baseline_throughput:,.0f} items/s")

    # 3. The partitioner: RL + constraint solver, trained online with PPO.
    config = RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        # PPO hyper-parameters from the paper (Section 5.1).
        ppo=PPOConfig(n_rollouts=20, n_minibatches=4, n_epochs=10),
    )
    partitioner = RLPartitioner(package.n_chips, config=config, rng=0)
    result = partitioner.search(env, n_samples=120)

    best = result.best_assignment
    report = validate_partition(graph, best, package.n_chips)
    print(f"\nsearched {result.n_samples} samples")
    print(f"best throughput improvement over the heuristic: {result.best_improvement:.3f}x")
    print(f"static constraints satisfied: {report.ok}")
    loads = np.bincount(best, weights=graph.compute_us, minlength=package.n_chips)
    for chip, load in enumerate(loads):
        nodes = int((best == chip).sum())
        print(f"  chip {chip}: {nodes:4d} ops, {load:10.1f} us compute")

    serve_demo(graph)


def serve_demo(graph) -> None:
    # 4. Serving mode: wrap the stack in a long-lived PartitionService and
    # ask for partitions as requests.  The first request runs a zero-shot
    # search (an *untrained* policy here — publish pretrained weights via
    # repro.CheckpointRegistry and pass checkpoint="name" for quality); the
    # repeat is a fingerprint-keyed cache hit — the same bit-identical
    # partition back in well under a millisecond.  (The CLI equivalent is
    # `python -m repro serve` + `python -m repro request`.)
    from repro import PartitionRequest, PartitionService, ServiceConfig

    service = PartitionService(ServiceConfig(default_samples=16))
    cold = service.submit(PartitionRequest(graph=graph, n_chips=4))
    hit = service.submit(PartitionRequest(graph=graph, n_chips=4))
    print("\nserving the same workload as a request/response service:")
    print(f"  cold request:   {cold.improvement:.3f}x in {cold.latency_ms:7.1f} ms")
    print(f"  repeat request: {hit.improvement:.3f}x in {hit.latency_ms:7.1f} ms "
          f"(cache hit: {hit.cached})")
    metrics = service.metrics()
    print(f"  cache hit rate: {metrics['cache']['hit_rate']:.0%} over "
          f"{metrics['requests_total']} requests")


if __name__ == "__main__":
    main()
