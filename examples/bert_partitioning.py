"""Partition BERT across an MCM package and compare search methods.

A scaled-down rendition of the paper's Section 5.3 evaluation: BERT on the
pipeline simulator ("real hardware"), comparing the greedy compiler
heuristic, random search, simulated annealing, and the constrained-RL
partitioner.

Run:  python examples/bert_partitioning.py [--full]

``--full`` uses the paper-scale graph (2138 nodes, 36 chips); the default
uses a 4-layer BERT on 8 chips so the script finishes in a couple of
minutes.
"""

import argparse
import time

import numpy as np

from repro import (
    MCMPackage,
    PartitionEnvironment,
    PipelineSimulator,
    RandomSearch,
    RLPartitioner,
    RLPartitionerConfig,
    SimulatedAnnealing,
    build_bert,
    greedy_partition,
)
from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MemoryPlanner
from repro.rl.ppo import PPOConfig


def calibrated_package(graph, n_chips: int, headroom: float = 1.3) -> MCMPackage:
    """Size chiplet SRAM so balanced partitions fit but skewed ones may not."""
    probe = MemoryPlanner(n_chips, capacity_bytes=2**62)
    peak = probe.plan(graph, greedy_partition(graph, n_chips)).peak_bytes.max()
    return MCMPackage(n_chips=n_chips, chip=ChipSpec(sram_bytes=peak * headroom))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale BERT (2138 nodes, 36 chips)")
    parser.add_argument("--samples", type=int, default=60,
                        help="search budget per method")
    args = parser.parse_args()

    if args.full:
        graph, n_chips = build_bert(), 36
    else:
        graph = build_bert(layers=4, hidden=256, heads=8, seq=128,
                           target_nodes=None, name="bert_small")
        n_chips = 8
    print(graph.summary())

    package = calibrated_package(graph, n_chips)
    simulator = PipelineSimulator(package)
    print(f"\npackage: {n_chips} chips x {package.chip.sram_bytes / 2**20:.1f} MiB SRAM")

    def fresh_env():
        return PartitionEnvironment(graph, simulator, n_chips)

    env = fresh_env()
    print(f"greedy heuristic throughput: {env.baseline_throughput:,.1f} items/s\n")

    rl_config = RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=4),
    )
    methods = {
        "Random": lambda env: RandomSearch(rng=0).search(env, args.samples),
        "SA": lambda env: SimulatedAnnealing(rng=0).search(env, args.samples),
        "RL": lambda env: RLPartitioner(n_chips, config=rl_config, rng=0).search(
            env, args.samples
        ),
    }

    best_overall = None
    best_score = 0.0
    print(f"{'method':<10} {'best impr':>10} {'time':>8}")
    for name, run in methods.items():
        start = time.time()
        result = run(fresh_env())
        print(f"{name:<10} {result.best_improvement:>9.3f}x {time.time() - start:>7.1f}s")
        if result.best_improvement > best_score:
            best_overall, best_score = result.best_assignment, result.best_improvement

    print("\n(improvements are throughput relative to the greedy heuristic;")
    print(" the paper's Figure 6 reports the same metric on real hardware)")

    if best_overall is not None:
        from repro.analysis import analyze_partition, format_partition_report

        print("\nbest partition found:")
        print(format_partition_report(analyze_partition(graph, best_overall, package)))


if __name__ == "__main__":
    main()
